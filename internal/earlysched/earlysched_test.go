package earlysched

import (
	"testing"

	"detmt/internal/analysis"
	"detmt/internal/lang"
	"detmt/internal/workload"
)

func classify(t *testing.T, src string, lanes int) *Classifier {
	t.Helper()
	obj, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := analysis.Analyze(obj)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return New(res, lanes)
}

// The family workload is the design target: every family method must land
// in its own non-global class, the cross-family method must escalate.
func TestFamiliesClassification(t *testing.T) {
	cfg := workload.DefaultFamilies()
	c := classify(t, workload.FamiliesSource(cfg), cfg.Families)

	seen := map[uint32]string{}
	for f := 0; f < cfg.Families; f++ {
		m := workload.FamilyMethod(f)
		cl := c.Classify(m, nil)
		if cl == GlobalClass {
			t.Fatalf("%s escalated to global: %s", m, c.GlobalReason(m))
		}
		if prev, dup := seen[cl]; dup {
			t.Fatalf("%s and %s share class %d", prev, m, cl)
		}
		seen[cl] = m
	}
	if cl := c.Classify(workload.GlobalMethod, nil); cl != GlobalClass {
		t.Fatalf("%s classified %d, want global", workload.GlobalMethod, cl)
	}
	if cl := c.Classify("noSuchMethod", nil); cl != GlobalClass {
		t.Fatalf("unknown method classified %d, want global", cl)
	}
}

// Family footprints must be pairwise disjoint and the global method must
// refuse a footprint.
func TestFamiliesFootprints(t *testing.T) {
	cfg := workload.DefaultFamilies()
	c := classify(t, workload.FamiliesSource(cfg), cfg.Families)

	used := map[int]string{}
	for f := 0; f < cfg.Families; f++ {
		m := workload.FamilyMethod(f)
		fp, ok := c.Footprint(m, nil)
		if !ok || len(fp) == 0 {
			t.Fatalf("%s: no footprint (ok=%v)", m, ok)
		}
		if len(fp) != cfg.PerFamily {
			t.Fatalf("%s: footprint size %d, want %d", m, len(fp), cfg.PerFamily)
		}
		for _, mu := range fp {
			if prev, dup := used[int(mu)]; dup {
				t.Fatalf("mutex %d in both %s and %s", mu, prev, m)
			}
			used[int(mu)] = m
		}
	}
	if _, ok := c.Footprint(workload.GlobalMethod, nil); ok {
		t.Fatalf("%s: unexpectedly has a footprint", workload.GlobalMethod)
	}
}

// The paper's Fig. 1 object locks cells[d % 100] — full range, so the
// classifier must conservatively put work in the global class.
func TestFig1WorkIsGlobal(t *testing.T) {
	cfg := workload.DefaultFig1()
	c := classify(t, workload.Fig1Source(cfg), 4)
	if cl := c.Classify(workload.MethodName, []lang.Value{int64(7)}); cl != GlobalClass {
		t.Fatalf("fig1 %s classified %d, want global", workload.MethodName, cl)
	}
	if r := c.GlobalReason(workload.MethodName); r == "" {
		t.Fatalf("fig1 %s: global without a recorded reason", workload.MethodName)
	}
}

// Wait/notify methods and raw-locking methods must be global.
func TestSuspensionEscalates(t *testing.T) {
	src := `
object O {
    monitor a;
    monitor b;
    field x;
    method waiter() {
        sync (a) {
            wait (a);
            x = x + 1;
        }
    }
    method pinger() {
        sync (b) {
            x = x + 1;
        }
    }
}
`
	c := classify(t, src, 4)
	if cl := c.Classify("waiter", nil); cl != GlobalClass {
		t.Fatalf("waiter classified %d, want global", cl)
	}
	if cl := c.Classify("pinger", nil); cl == GlobalClass {
		t.Fatalf("pinger escalated to global: %s", c.GlobalReason("pinger"))
	}
}

// Two methods touching the same plain field must fold into one class even
// though their monitors differ.
func TestSharedFieldMerges(t *testing.T) {
	src := `
object O {
    monitor a;
    monitor b;
    monitor c;
    field shared;
    field solo;
    method left() {
        sync (a) {
            shared = shared + 1;
        }
    }
    method right() {
        sync (b) {
            shared = shared + 1;
        }
    }
    method lone() {
        sync (c) {
            solo = solo + 1;
        }
    }
}
`
	c := classify(t, src, 4)
	l, r, lone := c.Classify("left", nil), c.Classify("right", nil), c.Classify("lone", nil)
	if l != r {
		t.Fatalf("left=%d right=%d: shared field did not merge", l, r)
	}
	if lone == l {
		t.Fatalf("lone folded into the shared class %d", l)
	}
	if l == GlobalClass || lone == GlobalClass {
		t.Fatalf("unexpected global: left=%d lone=%d", l, lone)
	}
}

// A hot-key method — one lock site indexed purely by a parameter with a
// sub-range interval — classifies per request.
func TestDynamicPerRequestClass(t *testing.T) {
	src := `
object O {
    monitor cells[8];
    method touch(k) {
        sync (cells[((k % 4) + 4) % 4]) {
            compute(1us);
        }
    }
}
`
	c := classify(t, src, 4)
	classes := map[uint32]bool{}
	for k := int64(0); k < 4; k++ {
		cl := c.Classify("touch", []lang.Value{k})
		if cl == GlobalClass {
			t.Fatalf("touch(%d) escalated to global", k)
		}
		classes[cl] = true

		fp, ok := c.Footprint("touch", []lang.Value{k})
		if !ok || len(fp) != 1 {
			t.Fatalf("touch(%d): footprint=%v ok=%v, want one mutex", k, fp, ok)
		}
	}
	if len(classes) < 2 {
		t.Fatalf("all four keys landed in one class; want per-request spread")
	}
	// Same key, same class — classification must be deterministic.
	if c.Classify("touch", []lang.Value{int64(2)}) != c.Classify("touch", []lang.Value{int64(2)}) {
		t.Fatalf("same key classified differently across calls")
	}
}

// Lock-free methods get a stable hashed class, never the global one.
func TestNoFootprintMethodsSpread(t *testing.T) {
	src := `
object O {
    monitor a;
    method idle() {
        compute(1us);
    }
    method locked() {
        sync (a) {
            compute(1us);
        }
    }
}
`
	c := classify(t, src, 4)
	if cl := c.Classify("idle", nil); cl == GlobalClass {
		t.Fatalf("idle escalated to global")
	}
	if c.Classify("idle", nil) != c.Classify("idle", nil) {
		t.Fatalf("idle class not stable")
	}
}

// DummyClass must sit outside the lane range so PDS dummies never share a
// lane with real requests.
func TestDummyClassReserved(t *testing.T) {
	cfg := workload.DefaultFamilies()
	c := classify(t, workload.FamiliesSource(cfg), cfg.Families)
	if c.DummyClass() != uint32(cfg.Families)+1 {
		t.Fatalf("DummyClass=%d, want %d", c.DummyClass(), cfg.Families+1)
	}
	for f := 0; f < cfg.Families; f++ {
		if c.Classify(workload.FamilyMethod(f), nil) == c.DummyClass() {
			t.Fatalf("family class collides with DummyClass")
		}
	}
}
