package earlysched

import (
	"fmt"
	"math"
	"sort"

	"detmt/internal/analysis"
	"detmt/internal/ids"
	"detmt/internal/lang"
)

// builder performs the static half of classification: it walks the
// transformed methods, collects conflict tokens, and merges tokens that
// one request may touch together (union-find).
//
// Tokens come in two flavours, both rendered as sortable string keys:
// monitors ("m:<mutex id, zero-padded>") and mutable plain fields
// ("f:<name>"). Monitor ids replicate lang.NewInstance(obj, 0) — dense,
// field-declaration order — which is exactly how every replica allocates
// its instance.
type builder struct {
	res *analysis.Result
	obj *lang.Object

	monitors map[string]ids.MutexID // monitor fields
	arrays   map[string]arrayInfo   // monitor array fields

	parent       map[string]string   // union-find over token keys
	methodTokens map[string][]string // sorted distinct tokens per method

	fieldMemo map[string][]string // transitive plain-field tokens per method
}

type arrayInfo struct {
	base ids.MutexID
	size int
}

func mutexToken(m ids.MutexID) string { return fmt.Sprintf("m:%08d", int(m)) }
func fieldToken(name string) string   { return "f:" + name }

func newBuilder(res *analysis.Result) *builder {
	b := &builder{
		res:          res,
		obj:          res.Object,
		monitors:     map[string]ids.MutexID{},
		arrays:       map[string]arrayInfo{},
		parent:       map[string]string{},
		methodTokens: map[string][]string{},
		fieldMemo:    map[string][]string{},
	}
	next := ids.MutexID(0)
	for _, f := range b.obj.Fields {
		switch f.Kind {
		case lang.FieldMonitor:
			b.monitors[f.Name] = next
			next++
		case lang.FieldMonitorArray:
			b.arrays[f.Name] = arrayInfo{base: next, size: f.Size}
			next += ids.MutexID(f.Size)
		}
	}
	return b
}

// ---- union-find ----

func (b *builder) makeSet(k string) {
	if _, ok := b.parent[k]; !ok {
		b.parent[k] = k
	}
}

func (b *builder) find(k string) string {
	for b.parent[k] != k {
		b.parent[k] = b.parent[b.parent[k]] // path halving
		k = b.parent[k]
	}
	return k
}

func (b *builder) union(a, c string) {
	b.makeSet(a)
	b.makeSet(c)
	ra, rc := b.find(a), b.find(c)
	if ra != rc {
		b.parent[ra] = rc
	}
}

// ---- per-method classification ----

// site is one lock site of a method, captured with its loop context.
type site struct {
	param  lang.Expr
	inLoop bool
	env    map[string]iv // repeat-variable bounds in scope at the site
}

// collector accumulates one method's walk results.
type collector struct {
	sites      []site
	waitNotify bool
	raw        bool
	fields     map[string]bool // plain-field token keys
}

func (b *builder) classifyMethod(m *lang.Method) *methodClass {
	global := func(reason string) *methodClass {
		return &methodClass{global: true, reason: reason}
	}
	rep := b.res.Report(m.Name)
	if rep != nil && rep.RawLocking {
		return global("raw (unpaired) locking")
	}
	if rep != nil {
		for _, s := range rep.Syncs {
			if !s.Announceable {
				return global(fmt.Sprintf("spontaneous lock parameter %q", s.Param))
			}
		}
	}

	col := &collector{fields: map[string]bool{}}
	b.scan(m.Body, &scanCtx{col: col, env: map[string]iv{}})
	if col.raw {
		return global("raw (unpaired) locking")
	}
	if col.waitNotify {
		return global("uses wait/notify")
	}

	// Resolve every lock site to a constant monitor or a narrowed index
	// range; anything else is unclassifiable.
	defs := census(m)
	type rangeSite struct {
		arr    arrayInfo
		lo, hi int64
		expr   lang.Expr
		inLoop bool
	}
	var consts []ids.MutexID
	var ranges []rangeSite
	for _, st := range col.sites {
		e := b.subst(st.param, defs, 0)
		switch n := e.(type) {
		case *lang.VarRef:
			mid, ok := b.monitors[n.Name]
			if !ok {
				return global(fmt.Sprintf("unresolvable lock parameter %q", n.Name))
			}
			consts = append(consts, mid)
		case *lang.Index:
			arr, ok := b.arrays[n.Base]
			if !ok {
				return global(fmt.Sprintf("unresolvable lock parameter %s[...]", n.Base))
			}
			idx := b.subst(n.Index, defs, 0)
			if v, ok := evalIndex(idx, nil, nil); ok {
				if v < 0 || v >= int64(arr.size) {
					return global(fmt.Sprintf("constant lock index %d out of range", v))
				}
				consts = append(consts, arr.base+ids.MutexID(v))
				continue
			}
			env := map[string]iv{}
			for k, v := range st.env {
				env[k] = v
			}
			r := intervalOf(idx, env)
			lo, hi := r.lo, r.hi
			if !r.ok {
				lo, hi = 0, int64(arr.size)-1
			} else {
				if lo < 0 {
					lo = 0
				}
				if hi > int64(arr.size)-1 {
					hi = int64(arr.size) - 1
				}
				if lo > hi {
					return global("lock index provably out of range")
				}
			}
			if lo == 0 && hi == int64(arr.size)-1 {
				// The analysis learned nothing beyond the array bounds:
				// the request may lock anywhere, which carries no conflict
				// information — the definition of a global request.
				return global(fmt.Sprintf("lock index spans the whole array %s", n.Base))
			}
			ranges = append(ranges, rangeSite{arr: arr, lo: lo, hi: hi, expr: idx, inLoop: st.inLoop})
		default:
			return global("unresolvable lock parameter")
		}
	}

	// Token set and union edges.
	var toks []string
	for f := range col.fields {
		toks = append(toks, f)
	}
	for _, mid := range consts {
		toks = append(toks, mutexToken(mid))
	}
	for _, r := range ranges {
		for i := r.lo; i <= r.hi; i++ {
			toks = append(toks, mutexToken(r.arr.base+ids.MutexID(i)))
		}
	}
	sort.Strings(toks)
	toks = dedup(toks)
	for _, k := range toks {
		b.makeSet(k)
	}
	b.methodTokens[m.Name] = toks

	mc := &methodClass{params: m.Params}
	mc.footprint = footprintOf(toks)

	// A method whose entire footprint is one non-loop argument-derived
	// lock site is classified per request: its tokens stay separate
	// components (unless other methods merge them), and the concrete
	// index picks the class at sequencing time.
	if len(col.fields) == 0 && len(consts) == 0 && len(ranges) == 1 &&
		!ranges[0].inLoop && usesOnlyParams(ranges[0].expr, m.Params) {
		r := ranges[0]
		mc.dynamic = true
		mc.site = &r.expr
		mc.base = r.arr.base
		mc.lo, mc.hi = r.lo, r.hi
		return mc
	}
	for i := 1; i < len(toks); i++ {
		b.union(toks[0], toks[i])
	}
	return mc
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// footprintOf extracts the monitor part of a token set as mutex ids.
func footprintOf(toks []string) []ids.MutexID {
	var out []ids.MutexID
	for _, k := range toks {
		var v int
		if _, err := fmt.Sscanf(k, "m:%08d", &v); err == nil {
			out = append(out, ids.MutexID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---- statement walk ----

type scanCtx struct {
	col    *collector
	inLoop bool
	env    map[string]iv
}

func (b *builder) scan(s lang.Stmt, ctx *scanCtx) {
	if s == nil {
		return
	}
	switch n := s.(type) {
	case *lang.Block:
		for _, c := range n.Stmts {
			b.scan(c, ctx)
		}
	case *lang.VarDecl:
		b.scanExpr(n.Init, ctx)
	case *lang.Assign:
		b.scanExpr(n.Target, ctx)
		b.scanExpr(n.Value, ctx)
	case *lang.If:
		b.scanExpr(n.Cond, ctx)
		b.scan(n.Then, ctx)
		if n.Else != nil {
			b.scan(n.Else, ctx)
		}
	case *lang.While:
		b.scanExpr(n.Cond, ctx)
		inner := &scanCtx{col: ctx.col, inLoop: true, env: ctx.env}
		b.scan(n.Body, inner)
	case *lang.Repeat:
		b.scanExpr(n.Count, ctx)
		bound := top()
		if lit, ok := n.Count.(*lang.IntLit); ok && lit.Value > 0 {
			bound = iv{lo: 0, hi: lit.Value - 1, ok: true}
		}
		env := map[string]iv{}
		for k, v := range ctx.env {
			env[k] = v
		}
		env[n.Var] = bound
		b.scan(n.Body, &scanCtx{col: ctx.col, inLoop: true, env: env})
	case *lang.Sync:
		b.recordSite(n.Param, ctx)
		b.scanExpr(n.Param, ctx)
		b.scan(n.Body, ctx)
	case *lang.LockStmt:
		b.recordSite(n.Param, ctx)
		b.scanExpr(n.Param, ctx)
	case *lang.UnlockStmt, *lang.LockInfoStmt, *lang.IgnoreStmt, *lang.LoopDoneStmt:
		// Companions of LockStmt: same monitors, no new information.
	case *lang.Wait:
		ctx.col.waitNotify = true
	case *lang.Notify:
		ctx.col.waitNotify = true
	case *lang.Compute:
		b.scanExpr(n.Dur, ctx)
	case *lang.NestedCall:
		b.scanExpr(n.Arg, ctx)
	case *lang.CallStmt:
		b.scanExpr(n.Call, ctx)
	case *lang.Return:
		b.scanExpr(n.Value, ctx)
	case *lang.RawLock, *lang.RawUnlock:
		ctx.col.raw = true
	}
}

func (b *builder) recordSite(param lang.Expr, ctx *scanCtx) {
	env := map[string]iv{}
	for k, v := range ctx.env {
		env[k] = v
	}
	ctx.col.sites = append(ctx.col.sites, site{param: param, inLoop: ctx.inLoop, env: env})
}

// scanExpr collects plain-field tokens (reads and writes) and recurses
// into helper calls.
func (b *builder) scanExpr(e lang.Expr, ctx *scanCtx) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *lang.VarRef:
		if f := b.obj.Field(n.Name); f != nil && f.Kind == lang.FieldPlain {
			ctx.col.fields[fieldToken(n.Name)] = true
		}
	case *lang.Index:
		b.scanExpr(n.Index, ctx)
	case *lang.Binary:
		b.scanExpr(n.L, ctx)
		b.scanExpr(n.R, ctx)
	case *lang.CallExpr:
		for _, a := range n.Args {
			b.scanExpr(a, ctx)
		}
		for _, f := range b.helperFields(n.Name) {
			ctx.col.fields[f] = true
		}
	}
}

// helperFields returns the plain-field tokens a helper method touches,
// transitively (the call graph is acyclic by validation).
func (b *builder) helperFields(name string) []string {
	if got, ok := b.fieldMemo[name]; ok {
		return got
	}
	m := b.obj.Lookup(name)
	if m == nil { // builtin
		return nil
	}
	b.fieldMemo[name] = nil // cycle guard; validation forbids cycles anyway
	col := &collector{fields: map[string]bool{}}
	b.scan(m.Body, &scanCtx{col: col, env: map[string]iv{}})
	var out []string
	for f := range col.fields {
		out = append(out, f)
	}
	sort.Strings(out)
	b.fieldMemo[name] = out
	return out
}

// ---- single-assignment local substitution ----

// census counts assignments per local name; names bound by nested-call
// results or repeat variables are poisoned (never substituted).
func census(m *lang.Method) map[string]*localDef {
	defs := map[string]*localDef{}
	note := func(name string, e lang.Expr) {
		d := defs[name]
		if d == nil {
			d = &localDef{}
			defs[name] = d
		}
		d.count++
		d.def = e
	}
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch n := s.(type) {
		case *lang.Block:
			for _, c := range n.Stmts {
				walk(c)
			}
		case *lang.VarDecl:
			note(n.Name, n.Init)
		case *lang.Assign:
			if v, ok := n.Target.(*lang.VarRef); ok {
				note(v.Name, n.Value)
			}
		case *lang.NestedCall:
			if n.Result != "" {
				note(n.Result, nil)
				note(n.Result, nil) // poison: runtime-dependent value
			}
		case *lang.Repeat:
			note(n.Var, nil)
			note(n.Var, nil) // poison: rebinds per iteration
			walk(n.Body)
		case *lang.If:
			walk(n.Then)
			if n.Else != nil {
				walk(n.Else)
			}
		case *lang.While:
			walk(n.Body)
		case *lang.Sync:
			walk(n.Body)
		}
	}
	walk(m.Body)
	return defs
}

type localDef struct {
	count int
	def   lang.Expr
}

// subst resolves single-assignment locals through their definitions,
// mirroring the announceability rule of package analysis. Fields are
// never substituted (mutable), and the depth cap bounds chains.
func (b *builder) subst(e lang.Expr, defs map[string]*localDef, depth int) lang.Expr {
	if e == nil || depth > 8 {
		return e
	}
	switch n := e.(type) {
	case *lang.VarRef:
		if b.obj.Field(n.Name) != nil {
			return e
		}
		if d, ok := defs[n.Name]; ok && d.count == 1 && d.def != nil {
			return b.subst(d.def, defs, depth+1)
		}
		return e
	case *lang.Index:
		return &lang.Index{Base: n.Base, Index: b.subst(n.Index, defs, depth+1)}
	case *lang.Binary:
		return &lang.Binary{Op: n.Op, L: b.subst(n.L, defs, depth+1), R: b.subst(n.R, defs, depth+1)}
	default:
		return e
	}
}

// usesOnlyParams reports whether e is evaluable from arguments alone.
func usesOnlyParams(e lang.Expr, params []string) bool {
	switch n := e.(type) {
	case *lang.IntLit:
		return true
	case *lang.VarRef:
		for _, p := range params {
			if p == n.Name {
				return true
			}
		}
		return false
	case *lang.Binary:
		return usesOnlyParams(n.L, params) && usesOnlyParams(n.R, params)
	default:
		return false
	}
}

// ---- interval analysis ----

// iv is a (possibly unknown) inclusive integer interval.
type iv struct {
	lo, hi int64
	ok     bool
}

func top() iv { return iv{} }

func satAdd(a, c int64) int64 {
	s := a + c
	if (c > 0 && s < a) || (c < 0 && s > a) {
		if c > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

// intervalOf bounds an index expression; env carries repeat-variable
// bounds, every other name is unknown. Unknown operands still narrow
// through %, which is what makes the family workloads' double-mod idiom
// ("((d % P) + P) % P + BASE") classify without knowing d.
func intervalOf(e lang.Expr, env map[string]iv) iv {
	switch n := e.(type) {
	case *lang.IntLit:
		return iv{lo: n.Value, hi: n.Value, ok: true}
	case *lang.VarRef:
		if r, ok := env[n.Name]; ok {
			return r
		}
		return top()
	case *lang.Binary:
		l := intervalOf(n.L, env)
		r := intervalOf(n.R, env)
		switch n.Op {
		case "+":
			if !l.ok || !r.ok {
				return top()
			}
			return iv{lo: satAdd(l.lo, r.lo), hi: satAdd(l.hi, r.hi), ok: true}
		case "-":
			if !l.ok || !r.ok {
				return top()
			}
			return iv{lo: satAdd(l.lo, -r.hi), hi: satAdd(l.hi, -r.lo), ok: true}
		case "*":
			if !l.ok || !r.ok {
				return top()
			}
			const lim = int64(1) << 31
			if l.lo < -lim || l.hi > lim || r.lo < -lim || r.hi > lim {
				return top()
			}
			ps := []int64{l.lo * r.lo, l.lo * r.hi, l.hi * r.lo, l.hi * r.hi}
			out := iv{lo: ps[0], hi: ps[0], ok: true}
			for _, p := range ps[1:] {
				if p < out.lo {
					out.lo = p
				}
				if p > out.hi {
					out.hi = p
				}
			}
			return out
		case "%":
			// x % k is bounded by k even when x is unknown.
			if !r.ok || r.lo < 1 {
				return top()
			}
			bound := r.hi - 1
			if l.ok && l.lo >= 0 {
				if l.hi <= bound {
					return l
				}
				return iv{lo: 0, hi: bound, ok: true}
			}
			return iv{lo: -bound, hi: bound, ok: true}
		default:
			return top()
		}
	default:
		return top()
	}
}

// ---- concrete evaluation ----

// evalIndex evaluates an index expression against concrete arguments,
// mirroring the interpreter's integer semantics (division or modulo by
// zero fails rather than guessing).
func evalIndex(e lang.Expr, params []string, args []lang.Value) (int64, bool) {
	switch n := e.(type) {
	case *lang.IntLit:
		return n.Value, true
	case *lang.VarRef:
		for i, p := range params {
			if p == n.Name && i < len(args) {
				if v, ok := args[i].(int64); ok {
					return v, true
				}
				return 0, false
			}
		}
		return 0, false
	case *lang.Binary:
		l, ok := evalIndex(n.L, params, args)
		if !ok {
			return 0, false
		}
		r, ok := evalIndex(n.R, params, args)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		case "%":
			if r == 0 {
				return 0, false
			}
			return l % r, true
		}
		return 0, false
	default:
		return 0, false
	}
}
