package earlysched

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"detmt/internal/analysis"
	"detmt/internal/gcs"
	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/replica"
	"detmt/internal/trace"
	"detmt/internal/vclock"
)

// genSource generates a random but analyzable object with a mix of
// classification outcomes: per-family methods over private monitor
// arrays and fields (classifiable, mutually disjoint), a cross-family
// method over a shared array with an unbounded index (escalates to the
// global class), and pure computation (no footprint). Wait/notify and
// nested invocations are deliberately excluded: the requests must run
// to completion on a detached serial replica for the cross-check.
func genSource(seed uint64) (src string, methods []string) {
	rng := ids.NewRNG(seed)
	nFam := 2 + rng.Intn(3)
	var b strings.Builder
	b.WriteString("object Rand {\n")
	for f := 0; f < nFam; f++ {
		fmt.Fprintf(&b, "    monitor ma%d[4];\n", f)
		fmt.Fprintf(&b, "    field fv%d;\n", f)
	}
	b.WriteString("    monitor sh[8];\n\n")
	for f := 0; f < nFam; f++ {
		nM := 1 + rng.Intn(2)
		for mi := 0; mi < nM; mi++ {
			name := fmt.Sprintf("fam%dm%d", f, mi)
			methods = append(methods, name)
			fmt.Fprintf(&b, "    method %s(p) {\n", name)
			nOps := 1 + rng.Intn(3)
			for oi := 0; oi < nOps; oi++ {
				switch rng.Intn(5) {
				case 0: // constant element of the family array
					fmt.Fprintf(&b, "        sync (ma%d[%d]) { fv%d = fv%d + 1; }\n", f, rng.Intn(4), f, f)
				case 1: // parameter index pinned to the family range
					fmt.Fprintf(&b, "        sync (ma%d[((p %% 4) + 4) %% 4]) { fv%d = fv%d + 2; }\n", f, f, f)
				case 2: // constant-bound loop over a prefix of the array
					fmt.Fprintf(&b, "        repeat i : %d {\n            sync (ma%d[i]) { fv%d = fv%d + 1; }\n        }\n",
						1+rng.Intn(3), f, f, f)
				case 3: // branch with a sync on one side
					fmt.Fprintf(&b, "        if (p %% 2 == %d) {\n            sync (ma%d[%d]) { fv%d = fv%d + 3; }\n        } else {\n            compute(200us);\n        }\n",
						rng.Intn(2), f, rng.Intn(4), f, f)
				case 4:
					fmt.Fprintf(&b, "        compute(%dus);\n", 100+rng.Intn(500))
				}
			}
			b.WriteString("    }\n\n")
		}
	}
	// Global: the index spans the whole shared array, so prediction
	// cannot bound the footprint below "everything".
	methods = append(methods, "crossAll")
	b.WriteString("    method crossAll(p) {\n        sync (sh[((p % 8) + 8) % 8]) { fv0 = fv0 + 1; }\n    }\n\n")
	methods = append(methods, "pure")
	b.WriteString("    method pure(p) {\n        compute(150us);\n    }\n")
	b.WriteString("}\n")
	return b.String(), methods
}

// lockSets replays the synthesized request log on a detached serial
// (SEQ) replica and returns each request's actual acquired-lock set,
// keyed by thread (= request) id.
func lockSets(t *testing.T, res *analysis.Result, nFam int, log []replica.LogEntry) map[ids.ThreadID]map[ids.MutexID]bool {
	t.Helper()
	v := vclock.NewVirtual()
	var rep *replica.Replica
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		rep = replica.ReplayDetached(v, replica.Config{Analysis: res, Kind: replica.KindSEQ}, log)
		for f := 0; f < nFam; f++ {
			rep.Instance().SetField(fmt.Sprintf("fv%d", f), int64(0))
		}
		v.Sleep(5 * time.Second)
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("serial replay timed out")
	}
	actual := map[ids.ThreadID]map[ids.MutexID]bool{}
	for _, e := range rep.Runtime().Trace().Events() {
		if e.Kind != trace.KindLockAcq {
			continue
		}
		if actual[e.Thread] == nil {
			actual[e.Thread] = map[ids.MutexID]bool{}
		}
		actual[e.Thread][e.Mutex] = true
	}
	return actual
}

// TestClassDisjointnessProperty is the classifier's soundness property
// over random programs: requests assigned distinct non-global classes
// have (a) disjoint *predicted* lock sets and (b) — cross-checked
// against a serial execution's trace — disjoint *actual* lock sets,
// with every actual set contained in its prediction.
func TestClassDisjointnessProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src, methods := genSource(seed)
			obj, err := lang.Parse(src)
			if err != nil {
				t.Fatalf("generated source does not parse: %v\n%s", err, src)
			}
			res, err := analysis.Analyze(obj)
			if err != nil {
				t.Fatalf("analysis: %v\n%s", err, src)
			}
			nFam := 0
			for strings.Contains(src, fmt.Sprintf("monitor ma%d[", nFam)) {
				nFam++
			}
			// Plenty of lanes, so folding does not merge distinct
			// components and the property is exercised at full width.
			cls := New(res, 16)

			type req struct {
				id     ids.ThreadID
				method string
				args   []lang.Value
				class  uint32
			}
			rng := ids.NewRNG(seed ^ 0x5eed)
			var reqs []req
			var log []replica.LogEntry
			for i := 0; i < 24; i++ {
				m := methods[rng.Intn(len(methods))]
				args := []lang.Value{int64(rng.Intn(32))}
				r := req{id: ids.ThreadID(i + 1), method: m, args: args, class: cls.Classify(m, args)}
				reqs = append(reqs, r)
				log = append(log, replica.LogEntry{
					At: time.Duration(i) * time.Millisecond,
					Msg: gcs.Message{
						Seq:    uint64(i + 1),
						Origin: gcs.Origin{Client: 1, IsClient: true},
						UID:    uint64(i + 1),
						Class:  r.class,
						Payload: replica.Request{
							Req:    ids.RequestID(i + 1),
							Method: m,
							Args:   args,
						},
					},
				})
			}

			// (a) Predicted footprints of distinct non-global classes are
			// disjoint.
			pred := make([]map[ids.MutexID]bool, len(reqs))
			for i, r := range reqs {
				if r.class == GlobalClass {
					continue
				}
				fp, ok := cls.Footprint(r.method, r.args)
				if !ok {
					t.Fatalf("non-global %s(%v) class %d has no footprint", r.method, r.args, r.class)
				}
				pred[i] = map[ids.MutexID]bool{}
				for _, m := range fp {
					pred[i][m] = true
				}
			}
			disjoint := func(a, b map[ids.MutexID]bool) ids.MutexID {
				for m := range a {
					if b[m] {
						return m
					}
				}
				return ids.NoMutex
			}
			for i := range reqs {
				for j := i + 1; j < len(reqs); j++ {
					if reqs[i].class == GlobalClass || reqs[j].class == GlobalClass ||
						reqs[i].class == reqs[j].class {
						continue
					}
					if m := disjoint(pred[i], pred[j]); m != ids.NoMutex {
						t.Errorf("classes %d and %d (%s vs %s) both predict %v\n%s",
							reqs[i].class, reqs[j].class, reqs[i].method, reqs[j].method, m, src)
					}
				}
			}

			// (b) Cross-check against the executed trace: the actual lock
			// set is contained in the prediction, so distinct classes also
			// stayed disjoint at runtime.
			actual := lockSets(t, res, nFam, log)
			if len(actual) == 0 {
				t.Fatalf("serial replay produced no lock events — cross-check is vacuous\n%s", src)
			}
			for i, r := range reqs {
				got := actual[r.id]
				if r.class == GlobalClass {
					continue
				}
				for m := range got {
					if !pred[i][m] {
						t.Errorf("%s(%v) class %d acquired %v outside its predicted footprint %v\n%s",
							r.method, r.args, r.class, m, pred[i], src)
					}
				}
			}
			for i := range reqs {
				for j := i + 1; j < len(reqs); j++ {
					if reqs[i].class == GlobalClass || reqs[j].class == GlobalClass ||
						reqs[i].class == reqs[j].class {
						continue
					}
					if m := disjoint(actual[reqs[i].id], actual[reqs[j].id]); m != ids.NoMutex {
						t.Errorf("distinct classes %d and %d both locked %v at runtime\n%s",
							reqs[i].class, reqs[j].class, m, src)
					}
				}
			}
		})
	}
}
