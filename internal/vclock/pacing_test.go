package vclock

import (
	"testing"
	"time"
)

func TestPacedLeaderTracksWall(t *testing.T) {
	v := NewVirtual()
	v.EnablePacing(true)
	done := make(chan time.Duration, 1)
	start := time.Now()
	v.Go(func() {
		v.Sleep(30 * time.Millisecond)
		done <- v.Now()
	})
	select {
	case now := <-done:
		if now != 30*time.Millisecond {
			t.Fatalf("virtual now = %v, want 30ms", now)
		}
		if el := time.Since(start); el < 20*time.Millisecond {
			t.Fatalf("paced sleep returned after only %v of wall time", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("paced sleep never fired")
	}
}

func TestFollowerGatedByHorizon(t *testing.T) {
	v := NewVirtual()
	v.EnablePacing(false)
	fired := make(chan struct{})
	v.Go(func() {
		v.Sleep(10 * time.Millisecond)
		close(fired)
	})
	select {
	case <-fired:
		t.Fatal("timer fired before any horizon arrived")
	case <-time.After(50 * time.Millisecond):
	}
	v.SetHorizon(10 * time.Millisecond)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer did not fire after the horizon was raised")
	}
	if v.Now() != 10*time.Millisecond {
		t.Fatalf("virtual now = %v, want 10ms", v.Now())
	}
}

func TestScheduleAtInjectsAtExactInstant(t *testing.T) {
	v := NewVirtual()
	v.EnablePacing(false)
	got := make(chan time.Duration, 1)
	v.ScheduleAt(5*time.Millisecond, DefaultOrder, "inject", func() {
		got <- v.Now()
	})
	v.SetHorizon(5 * time.Millisecond)
	select {
	case now := <-got:
		if now != 5*time.Millisecond {
			t.Fatalf("injected at %v, want 5ms", now)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injection never ran")
	}
}

func TestPacedParkIsIdleNotDeadlock(t *testing.T) {
	v := NewVirtual()
	v.EnablePacing(false)
	p := make(chan Parker, 1)
	done := make(chan struct{})
	v.Go(func() {
		pk := v.NewParker()
		p <- pk
		pk.Park() // unpaced, this would panic as a deadlock
		close(done)
	})
	pk := <-p
	time.Sleep(20 * time.Millisecond) // give the goroutine time to park
	pk.Unpark()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked goroutine never resumed")
	}
}

func TestHorizonIsMonotone(t *testing.T) {
	v := NewVirtual()
	v.EnablePacing(false)
	v.SetHorizon(20 * time.Millisecond)
	v.SetHorizon(5 * time.Millisecond) // ignored: lower than current
	fired := make(chan struct{})
	v.Go(func() {
		v.Sleep(15 * time.Millisecond)
		close(fired)
	})
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer within the horizon did not fire")
	}
}
