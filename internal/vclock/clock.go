// Package vclock provides the time substrate for detmt experiments.
//
// The paper's evaluation ran on a LAN testbed with millisecond-scale
// delays (12 ms nested invocations, 1.5 ms computations). Reproducing
// those experiments with wall-clock sleeps would be slow and noisy, so
// this package offers two interchangeable clocks:
//
//   - Virtual: a discrete-event clock. All managed goroutines register
//     their blocking points; when every managed goroutine is blocked the
//     clock jumps to the next timer. Experiments run in microseconds of
//     real time, produce bit-identical timings on every run, and any true
//     deadlock is detected and reported instead of hanging.
//   - Real: thin wrappers over the wall clock, for demos and for checking
//     that shapes survive on real hardware.
//
// The contract for code running under a Virtual clock: every blocking
// operation must be expressed either as Clock.Sleep or as a Parker
// park/unpark pair, and every goroutine that does so must be spawned via
// Clock.Go (or bracketed with Enter/Exit). Short sync.Mutex critical
// sections are exempt: a goroutine spinning on a contended mutex still
// counts as runnable, so the clock cannot advance past it.
package vclock

import "time"

// Clock abstracts virtual and real time.
type Clock interface {
	// Now returns the time elapsed since the clock was created.
	Now() time.Duration
	// Sleep blocks the calling goroutine for d (virtual or real).
	// Non-positive durations return immediately.
	Sleep(d time.Duration)
	// Go runs fn in a new managed goroutine.
	Go(fn func())
	// NewParker returns a fresh parking slot for one blocking site.
	// A Parker may be reused sequentially but never parked concurrently.
	NewParker() Parker
	// Enter registers the calling goroutine as managed; Exit unregisters
	// it. Go calls these automatically.
	Enter()
	Exit()
}

// SleepOrdered sleeps like Clock.Sleep but, on a Virtual clock, with a
// deterministic same-deadline rank: among timers expiring at the same
// virtual instant, lower orders wake first regardless of (racy) timer
// registration order. Fully deterministic simulations must use it for
// any sleep whose wake order can influence a decision (e.g. which of two
// simultaneous broadcasts gets the earlier total-order slot).
func SleepOrdered(c Clock, d time.Duration, label string, order uint64) {
	if d <= 0 {
		return
	}
	if v, ok := c.(*Virtual); ok {
		v.NewOrderedParker(label, order).ParkTimeout(d)
		return
	}
	c.Sleep(d)
}

// Parker is a one-goroutine blocking slot integrated with the clock's
// runnable-goroutine accounting.
//
// Unpark may be called before Park; the pending wakeup is then consumed
// by the next Park, which returns immediately. At most one wakeup is
// buffered. Unpark may be called from any goroutine, managed or not.
type Parker interface {
	// Park blocks until Unpark is called (or a pending unpark exists).
	Park()
	// ParkTimeout blocks until Unpark or until d elapses. It reports
	// whether the goroutine was woken by Unpark (true) or by the
	// timeout (false).
	ParkTimeout(d time.Duration) bool
	// Unpark wakes the parked goroutine, or buffers one wakeup.
	// Unparking a goroutine whose ParkTimeout already fired is a no-op
	// for that park (the buffered wakeup is cleared on timeout).
	Unpark()
}
