package vclock

import "time"

// Real is a wall-clock implementation of Clock. Sleeps and parks use the
// operating system timer; no goroutine accounting is performed. It exists
// so that examples and sanity benchmarks can run the very same scheduler
// and workload code against real time.
type Real struct {
	start time.Time
}

// NewReal returns a wall clock positioned at time zero (= now).
func NewReal() *Real { return &Real{start: time.Now()} }

// Now returns the wall-clock time elapsed since the clock was created.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Sleep blocks for d of wall-clock time.
func (r *Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go runs fn in a plain goroutine.
func (r *Real) Go(fn func()) { go fn() }

// Enter is a no-op for the real clock.
func (r *Real) Enter() {}

// Exit is a no-op for the real clock.
func (r *Real) Exit() {}

// NewParker returns a channel-based parker.
func (r *Real) NewParker() Parker { return &rparker{ch: make(chan struct{}, 1)} }

type rparker struct {
	ch chan struct{}
}

func (p *rparker) Park() { <-p.ch }

func (p *rparker) ParkTimeout(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-p.ch:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.ch:
		return true
	case <-t.C:
		// Clear a wakeup that raced with the timeout so it cannot leak
		// into the next park.
		select {
		case <-p.ch:
			return true
		default:
			return false
		}
	}
}

func (p *rparker) Unpark() {
	select {
	case p.ch <- struct{}{}:
	default: // a wakeup is already pending; coalesce
	}
}
