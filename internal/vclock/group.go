package vclock

import "sync"

// Group is the clock-aware analogue of sync.WaitGroup.
//
// A plain sync.WaitGroup must not be used to join managed goroutines under
// a Virtual clock: a goroutine blocked in WaitGroup.Wait still counts as
// runnable (the clock cannot see the block), which stalls virtual time,
// and waking a parked goroutine from an unmanaged one can race with
// deadlock detection. Group parks the waiter on a clock Parker and has the
// final Done — executed by a still-runnable managed goroutine — deliver
// the wakeup, so the accounting stays exact.
type Group struct {
	c       Clock
	mu      sync.Mutex
	n       int
	waiters []Parker
}

// NewGroup returns a Group bound to clock c.
func NewGroup(c Clock) *Group { return &Group{c: c} }

// Add adds delta to the group counter. It panics if the counter goes
// negative. If the counter reaches zero, all current waiters are released.
func (g *Group) Add(delta int) {
	g.mu.Lock()
	g.n += delta
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	var release []Parker
	if g.n == 0 {
		release = g.waiters
		g.waiters = nil
	}
	g.mu.Unlock()
	for _, p := range release {
		p.Unpark()
	}
}

// Done decrements the group counter by one.
func (g *Group) Done() { g.Add(-1) }

// Wait parks the calling (managed) goroutine until the counter is zero.
func (g *Group) Wait() {
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return
	}
	p := g.c.NewParker()
	g.waiters = append(g.waiters, p)
	g.mu.Unlock()
	p.Park()
}

// Go runs fn in a managed goroutine tracked by the group.
func (g *Group) Go(fn func()) {
	g.Add(1)
	g.c.Go(func() {
		defer g.Done()
		fn()
	})
}
