package vclock

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// run executes fn as the initial managed goroutine of a fresh virtual
// clock and waits (in real time, with a watchdog) for it to return.
// Tests must join any managed goroutines they spawn — use Group — before
// returning from fn.
func run(t *testing.T, fn func(v *Virtual)) *Virtual {
	t.Helper()
	v := NewVirtual()
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		fn(v)
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("virtual-clock test timed out in real time")
	}
	return v
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	v := run(t, func(v *Virtual) {
		start := v.Now()
		v.Sleep(12 * time.Millisecond)
		if got := v.Now() - start; got != 12*time.Millisecond {
			t.Errorf("slept %v, want 12ms", got)
		}
	})
	if v.Now() != 12*time.Millisecond {
		t.Errorf("final time %v", v.Now())
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	run(t, func(v *Virtual) {
		v.Sleep(0)
		v.Sleep(-time.Second)
		if v.Now() != 0 {
			t.Errorf("time moved to %v", v.Now())
		}
	})
}

func TestConcurrentSleepsOverlap(t *testing.T) {
	// Two goroutines sleeping in parallel: total virtual time is the max,
	// not the sum.
	v := run(t, func(v *Virtual) {
		g := NewGroup(v)
		for _, d := range []time.Duration{10 * time.Millisecond, 25 * time.Millisecond} {
			d := d
			g.Go(func() { v.Sleep(d) })
		}
		g.Wait()
	})
	if v.Now() != 25*time.Millisecond {
		t.Errorf("virtual makespan %v, want 25ms", v.Now())
	}
}

func TestSequentialSleepsAccumulate(t *testing.T) {
	v := run(t, func(v *Virtual) {
		for i := 0; i < 5; i++ {
			v.Sleep(3 * time.Millisecond)
		}
	})
	if v.Now() != 15*time.Millisecond {
		t.Errorf("virtual time %v, want 15ms", v.Now())
	}
}

func TestTimersFireInOrder(t *testing.T) {
	var mu atomic.Int64 // bit-packed order check: wake times must ascend
	var bad atomic.Bool
	run(t, func(v *Virtual) {
		g := NewGroup(v)
		for _, d := range []time.Duration{30, 10, 20} {
			d := d * time.Millisecond
			g.Go(func() {
				v.Sleep(d)
				prev := mu.Swap(int64(d))
				if int64(d) < prev {
					bad.Store(true)
				}
			})
		}
		g.Wait()
	})
	if bad.Load() {
		t.Fatal("sleepers woke out of deadline order")
	}
}

func TestTimerHeapFIFOAtSameDeadline(t *testing.T) {
	// Entries with equal deadlines pop in registration (seq) order.
	var h timerHeap
	for i := 0; i < 5; i++ {
		heap.Push(&h, timer{at: 5 * time.Millisecond, seq: uint64(i)})
	}
	heap.Push(&h, timer{at: time.Millisecond, seq: 99})
	if got := heap.Pop(&h).(timer); got.seq != 99 {
		t.Fatalf("earliest deadline not first: %+v", got)
	}
	for i := 0; i < 5; i++ {
		got := heap.Pop(&h).(timer)
		if got.seq != uint64(i) {
			t.Fatalf("same-deadline pop order broken: got seq %d want %d", got.seq, i)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	run(t, func(v *Virtual) {
		p := v.NewParker()
		g := NewGroup(v)
		g.Go(func() {
			v.Sleep(time.Millisecond)
			p.Unpark()
		})
		p.Park()
		if v.Now() != time.Millisecond {
			t.Errorf("woken at %v", v.Now())
		}
		g.Wait()
	})
}

func TestUnparkBeforeParkIsPending(t *testing.T) {
	run(t, func(v *Virtual) {
		p := v.NewParker()
		p.Unpark()
		p.Park() // must not block
		// A second park would block: verify via ParkTimeout.
		if woken := p.ParkTimeout(time.Millisecond); woken {
			t.Error("second park consumed a stale wakeup")
		}
	})
}

func TestUnparkCoalesces(t *testing.T) {
	run(t, func(v *Virtual) {
		p := v.NewParker()
		p.Unpark()
		p.Unpark()
		p.Unpark()
		p.Park()
		if woken := p.ParkTimeout(time.Millisecond); woken {
			t.Error("multiple pending unparks buffered; want coalesced to one")
		}
	})
}

func TestParkTimeoutTimesOut(t *testing.T) {
	v := run(t, func(v *Virtual) {
		p := v.NewParker()
		if woken := p.ParkTimeout(7 * time.Millisecond); woken {
			t.Error("spurious wake")
		}
	})
	if v.Now() != 7*time.Millisecond {
		t.Errorf("time %v, want 7ms", v.Now())
	}
}

func TestParkTimeoutZeroPollsPending(t *testing.T) {
	run(t, func(v *Virtual) {
		p := v.NewParker()
		if p.ParkTimeout(0) {
			t.Error("poll with no pending unpark reported woken")
		}
		p.Unpark()
		if !p.ParkTimeout(0) {
			t.Error("poll missed pending unpark")
		}
	})
}

func TestParkTimeoutWokenEarly(t *testing.T) {
	v := run(t, func(v *Virtual) {
		p := v.NewParker()
		g := NewGroup(v)
		g.Go(func() {
			v.Sleep(2 * time.Millisecond)
			p.Unpark()
		})
		if woken := p.ParkTimeout(100 * time.Millisecond); !woken {
			t.Error("timed out despite unpark")
		}
		g.Wait()
	})
	// The stale 100ms timer must not advance the clock.
	if v.Now() != 2*time.Millisecond {
		t.Errorf("time %v, want 2ms", v.Now())
	}
}

func TestStaleTimerDoesNotWakeNextPark(t *testing.T) {
	run(t, func(v *Virtual) {
		p := v.NewParker()
		g := NewGroup(v)
		g.Go(func() {
			v.Sleep(time.Millisecond)
			p.Unpark()
		})
		p.ParkTimeout(50 * time.Millisecond) // woken at 1ms; 50ms timer now stale
		g.Wait()
		// Park again with a longer timeout; the stale 50ms timer must not
		// wake or time-out this park.
		if woken := p.ParkTimeout(200 * time.Millisecond); woken {
			t.Error("stale timer woke subsequent park")
		}
		if v.Now() != 201*time.Millisecond {
			t.Errorf("time %v, want 201ms", v.Now())
		}
	})
}

func TestDeadlockDetection(t *testing.T) {
	v := NewVirtual()
	got := make(chan string, 1)
	v.SetDeadlockHandler(func(dump string) { got <- dump })
	release := v.NewNamedParker("stuck-site")
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		release.Park() // nobody will unpark in time; deadlock fires
	})
	var dump string
	select {
	case dump = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock handler never ran")
	}
	if want := "stuck-site"; !contains(dump, want) {
		t.Fatalf("deadlock dump %q missing %q", dump, want)
	}
	release.Unpark() // let the goroutine finish
	<-done
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestManyGoroutinesQuiesce(t *testing.T) {
	const n = 100
	var done atomic.Int64
	v := run(t, func(v *Virtual) {
		g := NewGroup(v)
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() {
				v.Sleep(time.Duration(i%10+1) * time.Millisecond)
				done.Add(1)
			})
		}
		g.Wait()
	})
	if done.Load() != n {
		t.Fatalf("%d of %d goroutines completed", done.Load(), n)
	}
	if v.Now() != 10*time.Millisecond {
		t.Errorf("makespan %v, want 10ms", v.Now())
	}
}

func TestVirtualDeterministicMakespan(t *testing.T) {
	// The same program yields the same virtual makespan on every run.
	shape := func() time.Duration {
		v := run(t, func(v *Virtual) {
			g := NewGroup(v)
			for i := 0; i < 20; i++ {
				i := i
				g.Go(func() {
					for j := 0; j < 5; j++ {
						v.Sleep(time.Duration((i*7+j*3)%11+1) * time.Millisecond)
					}
				})
			}
			g.Wait()
		})
		return v.Now()
	}
	first := shape()
	for i := 0; i < 3; i++ {
		if got := shape(); got != first {
			t.Fatalf("run %d makespan %v != %v", i, got, first)
		}
	}
}

func TestGroupWaitWhenAlreadyZero(t *testing.T) {
	run(t, func(v *Virtual) {
		g := NewGroup(v)
		g.Wait() // returns immediately
	})
}

func TestGroupNegativePanics(t *testing.T) {
	run(t, func(v *Virtual) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative counter")
			}
		}()
		NewGroup(v).Done()
	})
}

func TestGroupMultipleWaiters(t *testing.T) {
	var woken atomic.Int64
	run(t, func(v *Virtual) {
		g := NewGroup(v)
		g.Add(1)
		join := NewGroup(v)
		for i := 0; i < 5; i++ {
			join.Go(func() {
				g.Wait()
				woken.Add(1)
			})
		}
		v.Sleep(time.Millisecond)
		g.Done()
		join.Wait()
	})
	if woken.Load() != 5 {
		t.Fatalf("%d waiters woken, want 5", woken.Load())
	}
}

func TestRealClockBasics(t *testing.T) {
	r := NewReal()
	r.Sleep(time.Millisecond)
	if r.Now() < time.Millisecond {
		t.Errorf("real clock did not advance: %v", r.Now())
	}
	p := r.NewParker()
	p.Unpark()
	p.Park() // pending wakeup consumed
	if woken := p.ParkTimeout(time.Millisecond); woken {
		t.Error("stale wakeup on real parker")
	}
	done := make(chan struct{})
	r.Go(func() { close(done) })
	<-done
	r.Enter()
	r.Exit()
}

func TestRealParkerUnparkWhileParked(t *testing.T) {
	r := NewReal()
	p := r.NewParker()
	go func() {
		time.Sleep(time.Millisecond)
		p.Unpark()
	}()
	if woken := p.ParkTimeout(5 * time.Second); !woken {
		t.Fatal("timed out waiting for unpark")
	}
}

func TestRealGroup(t *testing.T) {
	r := NewReal()
	g := NewGroup(r)
	var n atomic.Int64
	for i := 0; i < 10; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 10 {
		t.Fatalf("joined %d of 10", n.Load())
	}
}

func TestSleepOrderedDeterministicTies(t *testing.T) {
	// Three sleepers with the same deadline but explicit ranks wake in
	// rank order on every run, regardless of registration order.
	for rep := 0; rep < 5; rep++ {
		var mu sync.Mutex
		var order []int
		run(t, func(v *Virtual) {
			g := NewGroup(v)
			for _, rank := range []int{3, 1, 2} {
				rank := rank
				g.Go(func() {
					SleepOrdered(v, 5*time.Millisecond, "tie", uint64(rank))
					mu.Lock()
					order = append(order, rank)
					mu.Unlock()
				})
			}
			g.Wait()
		})
		if order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Fatalf("rep %d: wake order %v, want rank order", rep, order)
		}
	}
}

func TestSleepOrderedZeroReturnsImmediately(t *testing.T) {
	run(t, func(v *Virtual) {
		SleepOrdered(v, 0, "noop", 1)
		if v.Now() != 0 {
			t.Errorf("time advanced: %v", v.Now())
		}
	})
}

func TestSleepOrderedRealClock(t *testing.T) {
	r := NewReal()
	start := time.Now()
	SleepOrdered(r, time.Millisecond, "real", 1)
	if time.Since(start) < time.Millisecond {
		t.Fatal("real ordered sleep returned early")
	}
}
