package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Virtual is a discrete-event clock.
//
// It maintains a count of runnable managed goroutines. Whenever that count
// drops to zero, the goroutine that caused the drop advances virtual time
// to the earliest pending timer and wakes its sleeper before blocking
// itself. If the count drops to zero with no pending timer while parked
// goroutines exist, the system is deadlocked and the deadlock handler runs
// (by default: panic with a dump of the parked sites).
type Virtual struct {
	mu         sync.Mutex
	now        time.Duration
	runnable   int
	timers     timerHeap
	seq        uint64
	parkedSet  map[*vparker]struct{}
	onDeadlock func(dump string)
}

// NewVirtual returns a virtual clock positioned at time zero.
func NewVirtual() *Virtual {
	return &Virtual{parkedSet: make(map[*vparker]struct{})}
}

// SetDeadlockHandler replaces the default panic-on-deadlock behaviour.
// The handler receives a human-readable dump of the parked sites. It is
// called with the clock's lock held; it must not call back into the clock.
func (v *Virtual) SetDeadlockHandler(h func(dump string)) {
	v.mu.Lock()
	v.onDeadlock = h
	v.mu.Unlock()
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Enter registers the calling goroutine as managed.
func (v *Virtual) Enter() {
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
}

// Exit unregisters the calling goroutine, possibly advancing the clock if
// it was the last runnable one.
func (v *Virtual) Exit() {
	v.mu.Lock()
	v.runnable--
	v.advanceLocked()
	v.mu.Unlock()
}

// Go runs fn in a new managed goroutine. The goroutine is accounted as
// runnable from the moment Go returns, so the clock can never advance past
// work that has been spawned but not yet scheduled.
func (v *Virtual) Go(fn func()) {
	v.Enter()
	go func() {
		defer v.Exit()
		fn()
	}()
}

// Sleep suspends the calling goroutine for d of virtual time.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	p := v.newParker("sleep", DefaultOrder)
	p.ParkTimeout(d)
}

// DefaultOrder is the firing-order rank of parkers created without an
// explicit order. Lower ranks fire first among timers with an identical
// deadline.
const DefaultOrder = ^uint64(0) / 2

// NewParker returns a Parker bound to this clock.
func (v *Virtual) NewParker() Parker { return v.newParker("", DefaultOrder) }

// NewNamedParker returns a Parker whose label appears in deadlock dumps.
func (v *Virtual) NewNamedParker(label string) Parker { return v.newParker(label, DefaultOrder) }

// NewOrderedParker returns a Parker whose timeout timers fire in `order`
// rank among timers with the same deadline (ties broken by registration
// sequence). Deterministic simulations use this so that simultaneous
// events are processed in an order that does not depend on racy timer
// registration.
func (v *Virtual) NewOrderedParker(label string, order uint64) Parker {
	return v.newParker(label, order)
}

func (v *Virtual) newParker(label string, order uint64) *vparker {
	return &vparker{v: v, ch: make(chan struct{}, 1), label: label, order: order}
}

type vparker struct {
	v        *Virtual
	ch       chan struct{}
	label    string
	order    uint64 // same-deadline firing rank
	pending  bool   // an Unpark arrived while not parked
	parked   bool   // currently parked (guarded by v.mu)
	timedOut bool   // last ParkTimeout ended by timeout
	gen      uint64 // invalidates stale heap entries
}

func (p *vparker) Park() {
	v := p.v
	v.mu.Lock()
	if p.pending {
		p.pending = false
		v.mu.Unlock()
		return
	}
	p.parked = true
	p.timedOut = false
	v.runnable--
	v.parkedSet[p] = struct{}{}
	v.advanceLocked()
	v.mu.Unlock()
	<-p.ch
}

// ParkTimeout parks with a deadline. A non-positive d parks on an
// immediate timer: the goroutine is woken (with woken=false) as soon as
// every other managed goroutine is blocked, without advancing virtual
// time. Low-order parkers use this to run "after everything due now has
// settled" — the event pump in package core depends on it.
func (p *vparker) ParkTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	v := p.v
	v.mu.Lock()
	if p.pending {
		p.pending = false
		v.mu.Unlock()
		return true
	}
	p.parked = true
	p.timedOut = false
	p.gen++
	v.seq++
	heap.Push(&v.timers, timer{at: v.now + d, order: p.order, seq: v.seq, p: p, gen: p.gen})
	v.runnable--
	v.parkedSet[p] = struct{}{}
	v.advanceLocked()
	v.mu.Unlock()
	<-p.ch
	v.mu.Lock()
	woken := !p.timedOut
	p.timedOut = false
	v.mu.Unlock()
	return woken
}

func (p *vparker) Unpark() {
	v := p.v
	v.mu.Lock()
	if p.parked {
		p.parked = false
		p.gen++ // invalidate any outstanding timeout timer
		delete(v.parkedSet, p)
		v.runnable++
		v.mu.Unlock()
		p.ch <- struct{}{}
		return
	}
	p.pending = true
	v.mu.Unlock()
}

// advanceLocked runs with v.mu held. If no managed goroutine is runnable
// it fires the earliest valid timer (advancing virtual time), and if none
// exists while goroutines are parked it reports a deadlock.
func (v *Virtual) advanceLocked() {
	if v.runnable > 0 {
		return
	}
	for v.timers.Len() > 0 {
		t := heap.Pop(&v.timers).(timer)
		if t.gen != t.p.gen || !t.p.parked {
			continue // stale entry: sleeper was unparked early
		}
		if t.at > v.now {
			v.now = t.at
		}
		t.p.parked = false
		t.p.timedOut = true
		delete(v.parkedSet, t.p)
		v.runnable++
		t.p.ch <- struct{}{} // buffered; cannot block
		return
	}
	if len(v.parkedSet) > 0 {
		dump := v.dumpLocked()
		if v.onDeadlock != nil {
			v.onDeadlock(dump)
			return
		}
		panic("vclock: deadlock — all managed goroutines parked with no pending timer\n" + dump)
	}
	// Nothing runnable, nothing parked: the simulation simply finished.
}

func (v *Virtual) dumpLocked() string {
	labels := make([]string, 0, len(v.parkedSet))
	for p := range v.parkedSet {
		l := p.label
		if l == "" {
			l = "<unnamed>"
		}
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return fmt.Sprintf("virtual time %v, %d parked: %s", v.now, len(labels), strings.Join(labels, ", "))
}

type timer struct {
	at    time.Duration
	order uint64 // deterministic same-deadline rank (parker order)
	seq   uint64 // FIFO tiebreak among identical (at, order)
	p     *vparker
	gen   uint64
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].order != h[j].order {
		return h[i].order < h[j].order
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
