package vclock

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Virtual is a discrete-event clock.
//
// It maintains a count of runnable managed goroutines. Whenever that count
// drops to zero, the goroutine that caused the drop advances virtual time
// to the earliest pending timer and wakes its sleeper before blocking
// itself. If the count drops to zero with no pending timer while parked
// goroutines exist, the system is deadlocked and the deadlock handler runs
// (by default: panic with a dump of the parked sites).
type Virtual struct {
	mu         sync.Mutex
	now        time.Duration
	runnable   int
	timers     timerHeap
	seq        uint64
	parkedSet  map[*vparker]struct{}
	onDeadlock func(dump string)

	// Pacing state (see EnablePacing). While paced, a future timer fires
	// only once both the externally promised horizon and wall time have
	// reached its deadline, and an empty system is idle, not deadlocked.
	paced     bool
	horizon   time.Duration
	wallStart time.Time
	offset    time.Duration // wallStart+offset anchors virtual zero
	offsetSet bool
	wallTimer *time.Timer
}

// horizonMax is the horizon of a pacing leader: effectively unbounded.
const horizonMax = time.Duration(1) << 62

// NewVirtual returns a virtual clock positioned at time zero.
func NewVirtual() *Virtual {
	return &Virtual{parkedSet: make(map[*vparker]struct{})}
}

// SetDeadlockHandler replaces the default panic-on-deadlock behaviour.
// The handler receives a human-readable dump of the parked sites. It is
// called with the clock's lock held; it must not call back into the clock.
func (v *Virtual) SetDeadlockHandler(h func(dump string)) {
	v.mu.Lock()
	v.onDeadlock = h
	v.mu.Unlock()
}

// EnablePacing couples the clock to real time and to an external event
// horizon, turning the discrete-event simulator into a conservative
// real-time executor for distributed deployments: virtual time still
// jumps between the same deterministic instants, but each jump waits
// until (a) wall time has caught up with the target instant and (b) the
// instant does not lie beyond the promised horizon (SetHorizon), so no
// timer can fire before an externally stamped message that precedes it.
//
// A leader (the process that originates the time stamps) runs with an
// unbounded horizon and a wall anchor fixed at the call; a follower
// starts with horizon zero and anchors its wall offset when the first
// horizon arrives, so late-joining processes do not stall. While paced,
// a fully parked system with no eligible timer is idle — external input
// may still arrive — rather than deadlocked.
//
// Call EnablePacing before any managed goroutines exist.
func (v *Virtual) EnablePacing(leader bool) {
	v.mu.Lock()
	v.paced = true
	v.wallStart = time.Now()
	if leader {
		v.horizon = horizonMax
		v.offsetSet = true
	}
	v.mu.Unlock()
}

// PromoteLeader turns a paced follower into the pacing leader at
// runtime (sequencer takeover): the horizon opens fully, so timers run
// at wall pace from here on. The wall offset anchored while following
// is kept, preserving the virtual-to-wall mapping; a follower that
// never received a horizon anchors at its current instant. Safe to
// call from unmanaged goroutines.
func (v *Virtual) PromoteLeader() {
	v.mu.Lock()
	if v.paced && v.horizon < horizonMax {
		v.horizon = horizonMax
		if !v.offsetSet {
			v.offset = v.now - time.Since(v.wallStart)
			v.offsetSet = true
		}
		v.advanceLocked()
	}
	v.mu.Unlock()
}

// SetHorizon raises the externally promised horizon: a guarantee that no
// future stamped event will carry an instant at or below h. Lower or
// equal horizons are ignored (the horizon is monotone). Safe to call
// from unmanaged goroutines.
func (v *Virtual) SetHorizon(h time.Duration) {
	v.mu.Lock()
	if !v.paced || h <= v.horizon {
		v.mu.Unlock()
		return
	}
	v.horizon = h
	if !v.offsetSet {
		v.offset = h - time.Since(v.wallStart)
		v.offsetSet = true
	}
	v.advanceLocked()
	v.mu.Unlock()
}

// ScheduleAt runs fn in a managed goroutine at virtual instant at (or
// immediately if that instant has passed), ranked by order among
// same-instant timers. The clock is prevented from advancing past at
// from the moment ScheduleAt returns, so unmanaged goroutines (e.g.
// network readers) can inject stamped events without racing the
// advancement loop.
func (v *Virtual) ScheduleAt(at time.Duration, order uint64, label string, fn func()) {
	v.Enter()
	go func() {
		defer v.Exit()
		v.mu.Lock()
		d := at - v.now
		v.mu.Unlock()
		if d > 0 {
			v.newParker(label, order).ParkTimeout(d)
		}
		fn()
	}()
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Enter registers the calling goroutine as managed.
func (v *Virtual) Enter() {
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
}

// Exit unregisters the calling goroutine, possibly advancing the clock if
// it was the last runnable one.
func (v *Virtual) Exit() {
	v.mu.Lock()
	v.runnable--
	v.advanceLocked()
	v.mu.Unlock()
}

// Go runs fn in a new managed goroutine. The goroutine is accounted as
// runnable from the moment Go returns, so the clock can never advance past
// work that has been spawned but not yet scheduled.
func (v *Virtual) Go(fn func()) {
	v.Enter()
	go func() {
		defer v.Exit()
		fn()
	}()
}

// Sleep suspends the calling goroutine for d of virtual time.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	p := v.newParker("sleep", DefaultOrder)
	p.ParkTimeout(d)
}

// DefaultOrder is the firing-order rank of parkers created without an
// explicit order. Lower ranks fire first among timers with an identical
// deadline.
const DefaultOrder = ^uint64(0) / 2

// NewParker returns a Parker bound to this clock.
func (v *Virtual) NewParker() Parker { return v.newParker("", DefaultOrder) }

// NewNamedParker returns a Parker whose label appears in deadlock dumps.
func (v *Virtual) NewNamedParker(label string) Parker { return v.newParker(label, DefaultOrder) }

// NewOrderedParker returns a Parker whose timeout timers fire in `order`
// rank among timers with the same deadline (ties broken by registration
// sequence). Deterministic simulations use this so that simultaneous
// events are processed in an order that does not depend on racy timer
// registration.
func (v *Virtual) NewOrderedParker(label string, order uint64) Parker {
	return v.newParker(label, order)
}

// NewOrderedParkerNum is NewOrderedParker for the common "<label> <n>"
// naming (one parker per thread/request). The number is stored raw and
// only formatted if a deadlock dump is rendered, so callers on hot
// submit paths need not build a name string per parker.
func (v *Virtual) NewOrderedParkerNum(label string, num, order uint64) Parker {
	p := v.newParker(label, order)
	p.num = num
	p.numbered = true
	return p
}

func (v *Virtual) newParker(label string, order uint64) *vparker {
	return &vparker{v: v, ch: make(chan struct{}, 1), label: label, order: order}
}

type vparker struct {
	v        *Virtual
	ch       chan struct{}
	label    string
	num      uint64 // numeric label suffix, rendered lazily in dumps
	numbered bool
	order    uint64 // same-deadline firing rank
	pending  bool   // an Unpark arrived while not parked
	parked   bool   // currently parked (guarded by v.mu)
	timedOut bool   // last ParkTimeout ended by timeout
	gen      uint64 // invalidates stale heap entries
}

func (p *vparker) Park() {
	v := p.v
	v.mu.Lock()
	if p.pending {
		p.pending = false
		v.mu.Unlock()
		return
	}
	p.parked = true
	p.timedOut = false
	v.runnable--
	v.parkedSet[p] = struct{}{}
	v.advanceLocked()
	v.mu.Unlock()
	<-p.ch
}

// ParkTimeout parks with a deadline. A non-positive d parks on an
// immediate timer: the goroutine is woken (with woken=false) as soon as
// every other managed goroutine is blocked, without advancing virtual
// time. Low-order parkers use this to run "after everything due now has
// settled" — the event pump in package core depends on it.
func (p *vparker) ParkTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	v := p.v
	v.mu.Lock()
	if p.pending {
		p.pending = false
		v.mu.Unlock()
		return true
	}
	p.parked = true
	p.timedOut = false
	p.gen++
	v.seq++
	heap.Push(&v.timers, timer{at: v.now + d, order: p.order, seq: v.seq, p: p, gen: p.gen})
	v.runnable--
	v.parkedSet[p] = struct{}{}
	v.advanceLocked()
	v.mu.Unlock()
	<-p.ch
	v.mu.Lock()
	woken := !p.timedOut
	p.timedOut = false
	v.mu.Unlock()
	return woken
}

func (p *vparker) Unpark() {
	v := p.v
	v.mu.Lock()
	if p.parked {
		p.parked = false
		p.gen++ // invalidate any outstanding timeout timer
		delete(v.parkedSet, p)
		v.runnable++
		v.mu.Unlock()
		p.ch <- struct{}{}
		return
	}
	p.pending = true
	v.mu.Unlock()
}

// advanceLocked runs with v.mu held. If no managed goroutine is runnable
// it fires the earliest valid timer (advancing virtual time), and if none
// exists while goroutines are parked it reports a deadlock.
func (v *Virtual) advanceLocked() {
	if v.runnable > 0 {
		return
	}
	for v.timers.Len() > 0 {
		t := v.timers[0] // peek: a paced clock may not be allowed to fire yet
		if t.gen != t.p.gen || !t.p.parked {
			heap.Pop(&v.timers)
			continue // stale entry: sleeper was unparked early
		}
		if v.paced && t.at > v.now {
			if t.at > v.horizon {
				return // SetHorizon re-runs the advancement
			}
			if wait := v.wallWaitLocked(t.at); wait > 0 {
				v.armWallKickLocked(wait)
				return
			}
		}
		heap.Pop(&v.timers)
		if t.at > v.now {
			v.now = t.at
		}
		t.p.parked = false
		t.p.timedOut = true
		delete(v.parkedSet, t.p)
		v.runnable++
		t.p.ch <- struct{}{} // buffered; cannot block
		return
	}
	if len(v.parkedSet) > 0 {
		if v.paced {
			return // idle: external input may still arrive
		}
		dump := v.dumpLocked()
		if v.onDeadlock != nil {
			v.onDeadlock(dump)
			return
		}
		panic("vclock: deadlock — all managed goroutines parked with no pending timer\n" + dump)
	}
	// Nothing runnable, nothing parked: the simulation simply finished.
}

// wallWaitLocked returns how much real time must pass before the paced
// clock may jump to virtual instant at (<= 0: jump now).
func (v *Virtual) wallWaitLocked(at time.Duration) time.Duration {
	if !v.offsetSet {
		return 0
	}
	return at - (time.Since(v.wallStart) + v.offset)
}

// armWallKickLocked re-runs the advancement after wait of real time.
func (v *Virtual) armWallKickLocked(wait time.Duration) {
	if v.wallTimer != nil {
		v.wallTimer.Stop()
	}
	v.wallTimer = time.AfterFunc(wait, func() {
		v.mu.Lock()
		v.wallTimer = nil
		v.advanceLocked()
		v.mu.Unlock()
	})
}

func (v *Virtual) dumpLocked() string {
	labels := make([]string, 0, len(v.parkedSet))
	for p := range v.parkedSet {
		l := p.label
		if p.numbered {
			l = fmt.Sprintf("%s %d", p.label, p.num)
		}
		if l == "" {
			l = "<unnamed>"
		}
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return fmt.Sprintf("virtual time %v, %d parked: %s", v.now, len(labels), strings.Join(labels, ", "))
}

type timer struct {
	at    time.Duration
	order uint64 // deterministic same-deadline rank (parker order)
	seq   uint64 // FIFO tiebreak among identical (at, order)
	p     *vparker
	gen   uint64
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].order != h[j].order {
		return h[i].order < h[j].order
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}
