package ids

import (
	"testing"
	"testing/quick"
)

func TestMakeRequestIDRoundTrip(t *testing.T) {
	f := func(c uint16, seq uint32) bool {
		id := MakeRequestID(ClientID(c), seq)
		return id.Client() == ClientID(c) && id.Seq() == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRequestIDUniqueAcrossClients(t *testing.T) {
	seen := map[RequestID]bool{}
	for c := ClientID(0); c < 50; c++ {
		for seq := uint32(0); seq < 50; seq++ {
			id := MakeRequestID(c, seq)
			if seen[id] {
				t.Fatalf("duplicate request id %v for %v/%d", id, c, seq)
			}
			seen[id] = true
		}
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{ReplicaID(2).String(), "R2"},
		{ClientID(7).String(), "C7"},
		{ThreadID(3).String(), "T3"},
		{SyncID(1).String(), "sync1"},
		{MutexID(9).String(), "mx9"},
		{MethodID(4).String(), "m4"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		n := r.Intn(13)
		if n < 0 || n >= 13 {
			t.Fatalf("Intn(13) = %d out of range", n)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.2) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.18 || frac > 0.22 {
		t.Fatalf("Bool(0.2) hit fraction %v, want ~0.2", frac)
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(11)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked generators produced identical first values")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		p := r.Perm(17)
		seen := make([]bool, 17)
		for _, v := range p {
			if v < 0 || v >= 17 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}
