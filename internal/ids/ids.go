// Package ids defines the typed identifiers shared by all detmt modules
// and a deterministic random number generator.
//
// Every entity that participates in a deterministic schedule — replicas,
// client requests, scheduler-managed threads, synchronized blocks — is
// identified by a dedicated integer type so that identifiers from
// different spaces cannot be confused, and so that traces and decision
// logs are comparable across replicas.
package ids

import "fmt"

// ReplicaID identifies one replica of a replicated object group.
type ReplicaID int

// ClientID identifies a client issuing remote method invocations.
type ClientID int

// RequestID identifies a client request uniquely across the whole group.
// The replication logic uses it to suppress duplicated requests; the
// schedulers use it as the total-order tiebreaker for thread admission.
type RequestID uint64

// ThreadID identifies a scheduler-managed thread on one replica.
// Threads executing the same request on different replicas carry the same
// ThreadID, which is what makes per-thread traces comparable.
type ThreadID uint64

// SyncID identifies one synchronized block in the object implementation.
// It is assigned by static analysis (package analysis) and is globally
// unique within one object implementation, as required by the paper's
// bookkeeping scheme (Sect. 4.1).
type SyncID int

// MutexID identifies a runtime mutex / condition-variable object.
// In the Java model of the paper every object can act as a monitor; here
// a mutex table maps names or indices to MutexIDs.
type MutexID int

// MethodID identifies a start method of the remote object's public
// interface.
type MethodID int

func (r ReplicaID) String() string { return fmt.Sprintf("R%d", int(r)) }
func (c ClientID) String() string  { return fmt.Sprintf("C%d", int(c)) }
func (r RequestID) String() string { return fmt.Sprintf("req%d", uint64(r)) }
func (t ThreadID) String() string  { return fmt.Sprintf("T%d", uint64(t)) }
func (s SyncID) String() string    { return fmt.Sprintf("sync%d", int(s)) }
func (m MutexID) String() string   { return fmt.Sprintf("mx%d", int(m)) }
func (m MethodID) String() string  { return fmt.Sprintf("m%d", int(m)) }

// NoMutex is the zero-like sentinel for "no mutex known yet"; real mutexes
// are numbered from 0, so the sentinel is negative.
const NoMutex MutexID = -1

// NoSync is the sentinel for operations that have no static syncid, e.g.
// locks issued by hand-written harness code rather than transformed source.
const NoSync SyncID = -1

// MakeRequestID combines a client id and a per-client sequence number into
// a globally unique request id. 32 bits of sequence space per client is
// plenty for any experiment in this repository.
func MakeRequestID(c ClientID, seq uint32) RequestID {
	return RequestID(uint64(uint32(c))<<32 | uint64(seq))
}

// Client extracts the client id from a request id built by MakeRequestID.
func (r RequestID) Client() ClientID { return ClientID(uint32(uint64(r) >> 32)) }

// Seq extracts the per-client sequence number from a request id.
func (r RequestID) Seq() uint32 { return uint32(uint64(r)) }
