package ids

// RNG is a deterministic SplitMix64 pseudo-random number generator.
//
// The paper's benchmark keeps the replicated execution deterministic by
// letting the *clients* draw all random numbers and pass them to the
// replicas as method parameters. RNG is the generator those clients use;
// it is also used to generate random programs for property tests. It is
// deliberately not safe for concurrent use: each client owns one.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams on every platform.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("ids: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator from this one, so that parallel
// entities (e.g. clients) can be seeded from one experiment seed without
// sharing state.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
