// Package replica implements the FTflex-style replication container of
// the paper: replicated objects driven by totally ordered requests,
// deterministic multithreaded execution via a configurable scheduler,
// nested invocations performed by exactly one replica, client stubs with
// first-reply semantics, and passive replication with deterministic
// re-execution from a request log.
package replica

import (
	"detmt/internal/core"
	"detmt/internal/ids"
	"detmt/internal/lang"
)

// Request is a client invocation, broadcast in total order.
type Request struct {
	Req    ids.RequestID
	Method string
	Args   []lang.Value
}

// Reply is a replica's answer to a client (direct message).
type Reply struct {
	Req   ids.RequestID
	Value lang.Value
	Err   string
}

// NestedStatus classifies how a nested invocation ended on the
// performing replica.
type NestedStatus uint8

const (
	// NestedOK: the external call returned a value.
	NestedOK NestedStatus = iota
	// NestedErr: the backend answered with an application error — a
	// decided outcome, as final as a value.
	NestedErr
	// NestedTimeout: the call's retry budget ran out against a dead or
	// unreachable backend (or the circuit breaker refused it outright).
	NestedTimeout
)

// NestedOutcome carries the outcome of a nested invocation performed by
// the designated replica, broadcast in total order so every replica
// resumes the suspended thread identically (paper Sect. 2: "we allow
// only one replica to do the call. The same replica spreads the reply to
// all other replicas"). Unlike its predecessor NestedReply it carries
// *every* outcome, not just success: an external backend that errors or
// times out must not stall suspended threads on all replicas — the
// performer's verdict travels the total order and the failure becomes a
// deterministic, catchable value.
type NestedOutcome struct {
	Req    ids.RequestID // the thread that issued the nested call
	N      int           // per-thread nested call counter
	Status NestedStatus
	Value  lang.Value // valid when Status == NestedOK
	Err    string     // human-readable cause when Status != NestedOK
}

// ResumeValue is what the suspended thread resumes with: the reply on
// success, a first-class error value (catchable via iserr) otherwise.
func (o NestedOutcome) ResumeValue() lang.Value {
	if o.Status == NestedOK {
		return o.Value
	}
	return lang.ErrValue(o.Err)
}

// StateUpdate is a primary checkpoint for passive replication: the
// paper notes that "many systems update the state of backup replicas
// only after multiple modifications. State modifications not yet
// propagated to the backup replicas can be applied to them by
// re-executing method invocations from a request log." The primary
// broadcasts one whenever its checkpoint interval elapses at a quiescent
// point (no request threads in flight), so the snapshot is consistent
// and covers exactly the messages up to UpToSeq; a failover then applies
// the snapshot and replays only the log tail.
type StateUpdate struct {
	Snapshot map[string]lang.Value
	UpToSeq  uint64 // total-order position whose effects are included
}

// Dummy is a filler request for PDS: it runs a method with the standard
// profile (one lock acquisition) so that barrier rounds keep completing
// when too few real requests arrive (paper Sect. 3.3).
type Dummy struct {
	Seq uint64
}

// LSADecision carries one leader scheduling decision to the followers.
// Index is the leader's emission counter (1-based): followers feed
// decisions to their scheduler strictly in index order, which makes the
// stream idempotent under retransmission and lets a rejoining follower
// resume from its checkpointed watermark (see Replica.SeedDecisions).
type LSADecision struct {
	Index uint64
	Event core.LSAEvent
}

// DummyMutex is the reserved mutex id dummy requests lock; it is far
// outside any instance's monitor range.
const DummyMutex = ids.MutexID(1 << 30)

// dummyThreadBase offsets dummy thread ids away from request ids.
const dummyThreadBase = uint64(1) << 62
