package replica

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"detmt/internal/analysis"
	"detmt/internal/backend"
	"detmt/internal/core"
	"detmt/internal/gcs"
	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/member"
	"detmt/internal/metrics"
	"detmt/internal/vclock"
)

// SchedulerKind selects the deterministic multithreading strategy.
type SchedulerKind string

// The strategies surveyed and proposed by the paper.
const (
	KindSEQ    SchedulerKind = "SEQ"
	KindSAT    SchedulerKind = "SAT"
	KindLSA    SchedulerKind = "LSA"
	KindPDS    SchedulerKind = "PDS"
	KindMAT    SchedulerKind = "MAT"
	KindMATLLA SchedulerKind = "MAT+LLA"
	KindPMAT   SchedulerKind = "PMAT"
)

// AllKinds lists every scheduler kind in presentation order.
func AllKinds() []SchedulerKind {
	return []SchedulerKind{KindSEQ, KindSAT, KindLSA, KindPDS, KindMAT, KindMATLLA, KindPMAT}
}

// Role distinguishes active replicas from passive backups.
type Role int

const (
	// RoleActive executes every request (active replication).
	RoleActive Role = iota
	// RoleBackup only logs the totally ordered messages; it executes
	// nothing until a failover replays the log (passive replication).
	RoleBackup
)

// Config parameterises one replica.
type Config struct {
	ID    ids.ReplicaID
	Clock vclock.Clock
	Group *gcs.Group
	// Analysis is the shared static-analysis result (transformed object
	// plus bookkeeping tables); all replicas must use the same one.
	Analysis *analysis.Result
	Kind     SchedulerKind
	Role     Role
	// PDSWindow is the PDS pool size (defaults to 4).
	PDSWindow int
	// PDSRelaxed disables the full-pool barrier requirement (the
	// published algorithm waits for W requests and needs dummy traffic;
	// relaxed mode lets a round open with whatever the pool holds).
	PDSRelaxed bool
	// EarlySched selects the class-aware admission variant of the
	// scheduler (conflict-class early scheduling): requests dispatch into
	// per-class scheduler lanes keyed by the conflict class the sequencer
	// stamped on each message (gcs.Message.Class). Supported for MAT,
	// MAT+LLA and PDS; other kinds panic in New. The group's
	// Config.Classify must be wired to an earlysched.Classifier, or every
	// request lands in the serial global class.
	EarlySched bool
	// NestedLatency is the simulated duration of the external service
	// called by nested invocations (simulator backends only; a blocking
	// backend's latency is whatever the wire delivers).
	NestedLatency time.Duration
	// Backend performs nested invocations on the performing replica.
	// Defaults to an in-process echo (backend.Echo). Only the performer
	// ever invokes it; every other replica learns the outcome from the
	// total order.
	Backend backend.ExternalBackend
	// NestedTimeout bounds one backend attempt (0: 2s).
	NestedTimeout time.Duration
	// NestedRetries is how many retries follow a failed attempt
	// (0: 2; negative disables retries).
	NestedRetries int
	// NestedBackoff is the initial retry backoff (0: 25ms, doubling,
	// capped at 500ms).
	NestedBackoff time.Duration
	// BreakerThreshold is how many consecutive transport failures trip
	// the nested-call circuit breaker (0: 5; negative: never trips).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker refuses calls before
	// probing the backend again (0: 2s).
	BreakerCooldown time.Duration
	// Logf receives operational diagnostics (nil discards them).
	Logf func(format string, args ...interface{})
	// LeaderID is the LSA leader (defaults to the lowest member).
	LeaderID ids.ReplicaID
	// CheckpointEvery makes an active primary broadcast a StateUpdate
	// checkpoint after every N completed requests, at the next quiescent
	// point (passive replication; 0 disables checkpoints).
	CheckpointEvery int
	// CheckpointSink, when set, replaces the StateUpdate broadcast: at
	// each checkpoint-eligible quiescent point (no request or dummy
	// threads in flight) it is called with the last applied total-order
	// slot. The crash-recovery subsystem uses it to capture local
	// deterministic checkpoints — every replica calls the sink at the
	// same slots with the same quiescent state.
	CheckpointSink func(seq uint64)
	// IdemPrefix namespaces the idempotency keys presented to the
	// backend ("" means "nested", the single-group default). A sharded
	// deployment sets it to "shard:<group>" so one gateway's memoisation
	// cache can serve several source shards without key collisions:
	// request ids are only unique within a group's total order.
	IdemPrefix string
	// OnSlot, when set, is called with every delivered total-order slot
	// before the payload is handled. It runs on the deterministic
	// delivery path (live and replayed alike), which is what lets the
	// membership tracker activate configuration changes at the same
	// slot on every replica.
	OnSlot func(seq uint64)
	// OnConfigChange, when set, receives membership changes delivered
	// through the total order (wire v7 ConfigChange payloads) together
	// with their delivery slot. Like OnSlot it runs on the
	// deterministic delivery path.
	OnConfigChange func(seq uint64, ch member.Change)
}

// Replica is one member of a replicated object group.
type Replica struct {
	cfg   Config
	rt    *core.Runtime
	in    *lang.Instance
	node  *gcs.Node
	sched core.Scheduler

	mu          sync.Mutex
	seenReqs    map[ids.RequestID]bool
	threads     map[ids.ThreadID]*core.Thread
	nestedCount map[ids.ThreadID]int
	waitingNest map[nestedKey]*core.Thread
	nestArgs    map[nestedKey]lang.Value
	stashedNest map[nestedKey]lang.Value
	log         []LogEntry
	completed   int
	lastSeq     uint64
	sinceCkpt   int
	checkpoint  *StateUpdate

	follower *core.LSAFollower // non-nil on LSA followers

	// External-service boundary (performer side).
	breaker   *backend.Breaker
	policy    backend.Policy
	nestedLat metrics.SyncSample // wall latency of performed calls
	performed atomic.Uint64      // outcomes this replica broadcast
	retries   atomic.Uint64      // extra backend attempts beyond the first
	appErrs   atomic.Uint64      // NestedErr outcomes
	timeouts  atomic.Uint64      // NestedTimeout outcomes (budget exhausted)
	fastFails atomic.Uint64      // calls refused by the open breaker
	rePerform atomic.Uint64      // calls re-run after performer takeover

	// LSA decision bookkeeping. The leader numbers every emitted decision
	// and retains a bounded log so a rejoining follower can fetch the
	// range it missed; followers track the watermark of the last decision
	// fed to their scheduler and stash out-of-order arrivals.
	decMu    sync.Mutex
	decIndex uint64                   // leader: last emitted index
	decLog   []LSADecision            // leader: retained tail, ascending Index
	decSeen  uint64                   // follower: last index fed
	decStash map[uint64]core.LSAEvent // follower: arrived ahead of the watermark

	dummyStop chan struct{}
}

type nestedKey struct {
	req ids.RequestID
	n   int
}

// LogEntry is one totally ordered message with its delivery instant,
// recorded for passive-replication replay (E8).
type LogEntry struct {
	At  time.Duration
	Msg gcs.Message
}

// New wires a replica to its group node and builds its scheduler.
func New(cfg Config) *Replica {
	if cfg.Analysis == nil {
		panic("replica: Config.Analysis is required")
	}
	if cfg.PDSWindow <= 0 {
		cfg.PDSWindow = 4
	}
	if cfg.Backend == nil {
		cfg.Backend = backend.Echo()
	}
	if cfg.LeaderID == 0 && cfg.Group != nil {
		cfg.LeaderID = cfg.Group.Members()[0]
	}
	r := &Replica{
		cfg:         cfg,
		seenReqs:    map[ids.RequestID]bool{},
		threads:     map[ids.ThreadID]*core.Thread{},
		nestedCount: map[ids.ThreadID]int{},
		waitingNest: map[nestedKey]*core.Thread{},
		nestArgs:    map[nestedKey]lang.Value{},
		stashedNest: map[nestedKey]lang.Value{},
		decStash:    map[uint64]core.LSAEvent{},
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = 5
	}
	r.breaker = backend.NewBreaker(threshold, cfg.BreakerCooldown)
	r.policy = backend.Policy{
		Timeout: cfg.NestedTimeout,
		Retries: cfg.NestedRetries,
		Backoff: cfg.NestedBackoff,
	}
	sched := r.buildScheduler()
	r.sched = sched
	r.rt = core.NewRuntime(core.Options{
		Clock:     cfg.Clock,
		Scheduler: sched,
		Static:    cfg.Analysis.Static,
		Nested:    r.onNested,
	})
	r.in = lang.NewInstance(cfg.Analysis.Object, 0)
	if cfg.Group != nil {
		r.node = cfg.Group.Node(cfg.ID)
		r.node.SetDeliver(r.onDeliver)
		r.node.SetDirect(r.onDirect)
		// Every deployment mode fails the performer role over: the
		// distributed cluster moves it with the sequencer, and the
		// simulator's lowest-live-member rule moves it when a crash is
		// detected — either way the promoted replica must re-perform
		// the nested calls the dead performer left pending.
		cfg.Group.SetOnViewChange(r.onViewChange)
	}
	return r
}

func (r *Replica) buildScheduler() core.Scheduler {
	if r.cfg.EarlySched {
		switch r.cfg.Kind {
		case KindMAT:
			return core.NewClassMAT(false)
		case KindMATLLA:
			return core.NewClassMAT(true)
		case KindPDS:
			return core.NewClassPDS(r.cfg.PDSWindow)
		default:
			panic(fmt.Sprintf("replica: early scheduling is not supported for %q (use MAT, MAT+LLA or PDS)", r.cfg.Kind))
		}
	}
	switch r.cfg.Kind {
	case KindSEQ:
		return core.NewSEQ()
	case KindSAT:
		return core.NewSAT()
	case KindPDS:
		return core.NewPDS(r.cfg.PDSWindow, !r.cfg.PDSRelaxed)
	case KindMAT:
		return core.NewMAT(false)
	case KindMATLLA:
		return core.NewMAT(true)
	case KindPMAT:
		return core.NewPMAT()
	case KindLSA:
		if r.cfg.ID == r.cfg.LeaderID {
			return core.NewLSALeader(func(e core.LSAEvent) {
				r.decMu.Lock()
				r.decIndex++
				d := LSADecision{Index: r.decIndex, Event: e}
				r.decLog = append(r.decLog, d)
				if len(r.decLog) > decLogRetention {
					drop := len(r.decLog) - decLogRetention
					r.decLog = append([]LSADecision(nil), r.decLog[drop:]...)
				}
				r.decMu.Unlock()
				for _, m := range r.cfg.Group.Members() {
					if m != r.cfg.ID {
						r.node.SendDirect(m, d)
					}
				}
			})
		}
		r.follower = core.NewLSAFollower()
		return r.follower
	default:
		panic(fmt.Sprintf("replica: unknown scheduler kind %q", r.cfg.Kind))
	}
}

// Runtime exposes the scheduler runtime (for traces and assertions).
func (r *Replica) Runtime() *core.Runtime { return r.rt }

// Instance exposes the object instance (for state assertions).
func (r *Replica) Instance() *lang.Instance { return r.in }

// ID returns the replica id.
func (r *Replica) ID() ids.ReplicaID { return r.cfg.ID }

// IsLSALeader reports whether this replica leads an LSA group.
func (r *Replica) IsLSALeader() bool {
	return r.cfg.Kind == KindLSA && r.cfg.ID == r.cfg.LeaderID
}

// Completed returns how many request threads have finished.
func (r *Replica) Completed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed
}

// SetRecovered seeds the replica's progress counters from an installed
// checkpoint, before any replayed traffic is delivered: lastSeq is the
// checkpoint's slot and completed the request count it covered. The
// checkpoint cadence restarts from the checkpoint slot so the rejoiner
// checkpoints at the same future slots as the survivors.
func (r *Replica) SetRecovered(lastSeq uint64, completed int) {
	r.mu.Lock()
	r.lastSeq = lastSeq
	r.completed = completed
	r.sinceCkpt = 0
	r.mu.Unlock()
}

// LastSeq returns the slot of the most recently delivered message.
func (r *Replica) LastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastSeq
}

// Log returns the recorded totally ordered message log.
func (r *Replica) Log() []LogEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]LogEntry(nil), r.log...)
}

// onDeliver handles one totally ordered message.
func (r *Replica) onDeliver(m gcs.Message) {
	r.mu.Lock()
	r.log = append(r.log, LogEntry{At: r.cfg.Clock.Now(), Msg: m})
	r.lastSeq = m.Seq
	r.mu.Unlock()
	if r.cfg.OnSlot != nil {
		r.cfg.OnSlot(m.Seq)
	}
	if ch, ok := m.Payload.(member.Change); ok {
		// Membership changes are meta-traffic: they never reach the
		// scheduler or the object, so they perturb neither the thread
		// interleaving nor the consistency hash.
		if r.cfg.OnConfigChange != nil && ch.Kind != member.Pad {
			r.cfg.OnConfigChange(m.Seq, ch)
		}
		return
	}
	if su, ok := m.Payload.(StateUpdate); ok {
		r.applyCheckpoint(su)
		return
	}
	if r.cfg.Role == RoleBackup {
		return // passive backup: log only
	}
	r.apply(m)
}

// applyCheckpoint records (and, on backups, installs) a primary
// checkpoint.
func (r *Replica) applyCheckpoint(su StateUpdate) {
	r.mu.Lock()
	r.checkpoint = &su
	r.mu.Unlock()
	if r.cfg.Role == RoleBackup {
		for k, v := range su.Snapshot {
			r.in.SetField(k, v)
		}
	}
}

// FailoverData returns what a backup needs to take over: the latest
// checkpoint snapshot (nil if none arrived) and the log tail not covered
// by it.
func (r *Replica) FailoverData() (snapshot map[string]lang.Value, tail []LogEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	from := uint64(0)
	if r.checkpoint != nil {
		snapshot = make(map[string]lang.Value, len(r.checkpoint.Snapshot))
		for k, v := range r.checkpoint.Snapshot {
			snapshot[k] = v
		}
		from = r.checkpoint.UpToSeq
	}
	for _, e := range r.log {
		if e.Msg.Seq <= from {
			continue
		}
		if _, isCkpt := e.Msg.Payload.(StateUpdate); isCkpt {
			continue
		}
		tail = append(tail, e)
	}
	return snapshot, tail
}

// apply executes one totally ordered message (shared with replay).
func (r *Replica) apply(m gcs.Message) {
	switch p := m.Payload.(type) {
	case Request:
		r.applyRequest(p, m.Class)
	case NestedOutcome:
		r.applyNestedOutcome(p)
	case Dummy:
		r.applyDummy(p, m.Class)
	}
}

func (r *Replica) applyRequest(req Request, class uint32) {
	r.mu.Lock()
	if r.seenReqs[req.Req] {
		r.mu.Unlock()
		return // duplicate suppression (paper Sect. 2)
	}
	r.seenReqs[req.Req] = true
	r.mu.Unlock()

	method := r.cfg.Analysis.Object.Lookup(req.Method)
	if method == nil {
		r.reply(req, nil, fmt.Sprintf("unknown method %q", req.Method))
		return
	}
	tid := ids.ThreadID(req.Req)
	th := r.rt.SubmitClassed(tid, method.ID, class, func(th *core.Thread) {
		v, err := r.in.Exec(th, req.Method, req.Args)
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		r.reply(req, v, errStr)
	}, func() {
		r.mu.Lock()
		r.completed++
		r.sinceCkpt++
		delete(r.threads, tid)
		ckpt := r.cfg.CheckpointEvery > 0 && r.cfg.Role == RoleActive &&
			r.sinceCkpt >= r.cfg.CheckpointEvery && len(r.threads) == 0
		var upTo uint64
		if ckpt {
			r.sinceCkpt = 0
			upTo = r.lastSeq
		}
		r.mu.Unlock()
		if ckpt {
			// Quiescent point: no request or dummy threads in flight, so
			// the snapshot covers every delivered message.
			if r.cfg.CheckpointSink != nil {
				r.cfg.CheckpointSink(upTo)
			} else if r.node != nil {
				r.node.Broadcast(StateUpdate{Snapshot: r.in.Snapshot(), UpToSeq: upTo})
			}
		}
	})
	r.mu.Lock()
	r.threads[tid] = th
	r.mu.Unlock()
}

func (r *Replica) reply(req Request, v lang.Value, errStr string) {
	if r.node == nil {
		return // detached replay: no clients to answer
	}
	r.node.SendToClient(req.Req.Client(), Reply{Req: req.Req, Value: v, Err: errStr})
}

// applyNestedOutcome resumes the thread suspended on a nested call with
// the performer's verdict — a value, an application error, or a timeout;
// the last two resume as a first-class ErrValue the program can catch.
// Duplicate outcomes (a deposed performer's broadcast racing the new
// performer's re-perform) land under a key that is never reused, so the
// stash entry is inert.
func (r *Replica) applyNestedOutcome(no NestedOutcome) {
	key := nestedKey{no.Req, no.N}
	v := no.ResumeValue()
	r.mu.Lock()
	if th, ok := r.waitingNest[key]; ok {
		delete(r.waitingNest, key)
		delete(r.nestArgs, key)
		r.mu.Unlock()
		r.rt.ScheduleNestedResume(th, v)
		return
	}
	// The outcome arrived before this replica's thread reached the call
	// (replicas progress at different speeds): stash it.
	r.stashedNest[key] = v
	r.mu.Unlock()
}

func (r *Replica) applyDummy(d Dummy, class uint32) {
	tid := ids.ThreadID(dummyThreadBase | d.Seq)
	th := r.rt.SubmitClassed(tid, 0, class, func(th *core.Thread) {
		// The standard dummy profile: one lock acquisition on a reserved
		// mutex, so PDS barriers complete.
		th.Lock(ids.NoSync, DummyMutex)
		th.Unlock(ids.NoSync, DummyMutex)
	}, func() {
		r.mu.Lock()
		delete(r.threads, tid)
		r.mu.Unlock()
	})
	// Dummies count toward the quiescence check: a checkpoint taken while
	// a dummy's lock events were mid-flight would split those events
	// across the snapshot boundary and diverge a rejoiner's trace hash.
	r.mu.Lock()
	r.threads[tid] = th
	r.mu.Unlock()
}

// decLogRetention bounds the leader's retained decision tail; a
// follower whose watermark fell further behind cannot rejoin by
// decision replay (it would need a newer checkpoint).
const decLogRetention = 65536

// onDirect handles point-to-point messages (LSA decision stream). The
// index watermark makes the stream idempotent: duplicates (a fetched
// range overlapping the live stream during rejoin) are dropped, and
// arrivals ahead of the watermark are stashed until the gap fills.
func (r *Replica) onDirect(from gcs.Origin, p gcs.Payload) {
	d, ok := p.(LSADecision)
	if !ok || r.follower == nil {
		return
	}
	r.feedDecision(d)
}

func (r *Replica) feedDecision(d LSADecision) {
	r.decMu.Lock()
	if d.Index <= r.decSeen {
		r.decMu.Unlock()
		return // already fed (duplicate from a fetch/stream overlap)
	}
	if d.Index != r.decSeen+1 {
		r.decStash[d.Index] = d.Event
		r.decMu.Unlock()
		return
	}
	events := []core.LSAEvent{d.Event}
	r.decSeen = d.Index
	for {
		e, ok := r.decStash[r.decSeen+1]
		if !ok {
			break
		}
		delete(r.decStash, r.decSeen+1)
		r.decSeen++
		events = append(events, e)
	}
	r.decMu.Unlock()
	r.rt.External(func() {
		for _, e := range events {
			r.follower.Feed(e)
		}
	})
}

// LSAFed returns the replica's decision watermark: on a follower the
// index of the last decision fed to its scheduler, on the leader the
// last emitted index. At a checkpoint-eligible quiescent point every
// emitted decision has been consumed, so all members report the same
// value — which keeps checkpoints byte-identical across the group.
func (r *Replica) LSAFed() uint64 {
	r.decMu.Lock()
	defer r.decMu.Unlock()
	if r.follower != nil {
		return r.decSeen
	}
	return r.decIndex
}

// SeedDecisions installs a rejoining follower's checkpointed watermark
// and feeds it the decisions fetched from the leader. Call after the
// checkpoint is installed and before live traffic resumes.
func (r *Replica) SeedDecisions(fed uint64, decs []LSADecision) {
	r.decMu.Lock()
	r.decSeen = fed
	r.decIndex = fed
	r.decMu.Unlock()
	if r.follower == nil {
		return
	}
	for _, d := range decs {
		r.feedDecision(d)
	}
}

// DecisionTail returns the retained leader decisions with Index >=
// fromIdx (at most max), whether more remain past them, and whether
// fromIdx is still inside the retained window. Donors serve rejoining
// followers with it.
func (r *Replica) DecisionTail(fromIdx uint64, max int) (decs []LSADecision, more, ok bool) {
	r.decMu.Lock()
	defer r.decMu.Unlock()
	if fromIdx > r.decIndex {
		return nil, false, true // caller is already caught up
	}
	if len(r.decLog) == 0 || fromIdx < r.decLog[0].Index {
		return nil, false, false // aged out of the retained window
	}
	start := int(fromIdx - r.decLog[0].Index)
	end := len(r.decLog)
	if max > 0 && start+max < end {
		end = start + max
	}
	decs = append([]LSADecision(nil), r.decLog[start:end]...)
	return decs, end < len(r.decLog), true
}

// onNested is the core NestedHandler: it implements the paper's
// one-replica-performs rule. The designated performer (lowest live
// member) runs the external call and broadcasts the outcome through the
// total order; everyone resumes on delivery.
func (r *Replica) onNested(rt *core.Runtime, th *core.Thread, arg interface{}) {
	tid := th.ID
	var value lang.Value
	if v, ok := arg.(lang.Value); ok {
		value = v
	}
	r.mu.Lock()
	r.nestedCount[tid]++
	n := r.nestedCount[tid]
	key := nestedKey{ids.RequestID(tid), n}
	if v, ok := r.stashedNest[key]; ok {
		delete(r.stashedNest, key)
		r.mu.Unlock()
		rt.ScheduleNestedResume(th, v)
		return
	}
	r.waitingNest[key] = th
	// Remember the argument so a survivor promoted to performer by a
	// view change can re-run the call if the original performer died
	// before broadcasting the outcome.
	r.nestArgs[key] = value
	r.mu.Unlock()

	if r.isPerformer() {
		r.perform(key, value, true)
	}
}

// idemKey is a nested call's idempotency key. It is derived solely from
// the request id and the per-thread call counter — never from the
// performing replica — so a new performer re-running the call after a
// failover presents the same key, and a memoising backend answers with
// the original outcome instead of applying the side effects twice. The
// prefix defaults to "nested"; sharded deployments override it per
// source group (Config.IdemPrefix) so keys stay unique across shards
// sharing one gateway cache.
func (r *Replica) idemKey(key nestedKey) string {
	prefix := r.cfg.IdemPrefix
	if prefix == "" {
		prefix = "nested"
	}
	return fmt.Sprintf("%s:%d:%d", prefix, uint64(key.req), key.n)
}

// perform runs one external call against the configured backend and
// broadcasts the outcome. managed marks the caller as a
// scheduler-managed goroutine (the onNested path); the view-change
// re-perform path runs unmanaged. On a managed goroutine a blocking
// backend is detached from the virtual clock for the call's duration —
// real I/O must not hold virtual time hostage — and the simulated
// NestedLatency is paid with a deterministic broadcast rank.
func (r *Replica) perform(key nestedKey, arg lang.Value, managed bool) {
	out := NestedOutcome{Req: key.req, N: key.n}
	blocking := backend.Blocking(r.cfg.Backend)
	if !r.breaker.Allow() {
		// Fail fast: the backend is evidently down, and paying the full
		// deadline-and-retry budget per call would stall every nested
		// invocation behind a dead service. The fast-fail travels the
		// total order like any outcome, so it is just as deterministic.
		r.fastFails.Add(1)
		out.Status = NestedTimeout
		out.Err = "backend circuit open: failing fast"
	} else {
		pol := r.policy
		if !blocking {
			// No real I/O to wait out; a wall-clock backoff would stall
			// the virtual clock under the simulator.
			pol.Sleep = func(time.Duration) {}
		}
		start := time.Now()
		if managed && blocking {
			r.cfg.Clock.Exit()
		}
		v, attempts, err := pol.Do(r.cfg.Backend, r.idemKey(key), arg)
		if managed && blocking {
			r.cfg.Clock.Enter()
		}
		r.nestedLat.Add(time.Since(start))
		if attempts > 1 {
			r.retries.Add(uint64(attempts - 1))
		}
		switch {
		case err == nil:
			r.breaker.Success()
			out.Status = NestedOK
			out.Value = v
		case errors.Is(err, backend.ErrClosed):
			// Our own side closed the backend client (shutdown): the call's
			// outcome is unknown but the error says nothing about the
			// backend. Keep it out of the breaker and the timeout totals —
			// a clean shutdown must not read like a flapping service.
			out.Status = NestedTimeout
			out.Err = err.Error()
		case !backend.Retryable(err):
			// The backend answered, and the answer is an error: the
			// service is alive, so this is a decided outcome, not
			// breaker food.
			r.breaker.Success()
			r.appErrs.Add(1)
			out.Status = NestedErr
			out.Err = err.Error()
		default:
			r.breaker.Failure()
			r.timeouts.Add(1)
			out.Status = NestedTimeout
			out.Err = err.Error()
		}
	}
	if managed {
		// The simulated external latency; the request-id rank keeps two
		// calls finishing at the same instant in a deterministic
		// broadcast order (their total-order slots must not depend on a
		// race).
		vclock.SleepOrdered(r.cfg.Clock, r.cfg.NestedLatency,
			fmt.Sprintf("nested %d", uint64(key.req)), uint64(key.req))
	}
	r.performed.Add(1)
	r.broadcastOutcome(key, out)
}

// broadcastOutcome spreads the performer's verdict through the total
// order, retrying around sequencer elections: during a view change
// Broadcast fails with gcs.ErrNoSequencer, and silently dropping the
// outcome would stall the suspended thread on every replica until some
// later view change re-performs the call. Retries stop once the outcome
// is no longer this replica's to deliver — the key resolved (someone
// else's broadcast landed) or this replica was deposed (the next
// performer re-performs under the same idempotency key).
func (r *Replica) broadcastOutcome(key nestedKey, out NestedOutcome) {
	backoff := 5 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := r.node.Broadcast(out)
		if err == nil {
			return
		}
		if !errors.Is(err, gcs.ErrNoSequencer) || attempt >= 8 {
			r.logf("replica %d: nested outcome %d/%d dropped: %v",
				r.cfg.ID, uint64(key.req), key.n, err)
			return
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 200*time.Millisecond {
			backoff = 200 * time.Millisecond
		}
		r.mu.Lock()
		_, waiting := r.waitingNest[key]
		r.mu.Unlock()
		if !waiting || !r.isPerformer() {
			return
		}
	}
}

// NestedMetrics is a snapshot of the external-service boundary counters.
// Most accumulate only on the performing replica; elsewhere they stay
// zero.
type NestedMetrics struct {
	Performed     uint64  `json:"performed"`     // outcomes broadcast by this replica
	Retries       uint64  `json:"retries"`       // backend attempts beyond the first
	AppErrors     uint64  `json:"app_errors"`    // NestedErr outcomes
	Timeouts      uint64  `json:"timeouts"`      // NestedTimeout outcomes (budget exhausted)
	FastFails     uint64  `json:"fast_fails"`    // calls refused by the open breaker
	RePerformed   uint64  `json:"re_performed"`  // calls re-run after performer takeover
	BreakerState  string  `json:"breaker_state"` // "closed" | "open" | "half_open"
	BreakerTrips  uint64  `json:"breaker_trips"` // times the breaker opened
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
}

// NestedMetrics reports the external-service boundary counters.
func (r *Replica) NestedMetrics() NestedMetrics {
	m := NestedMetrics{
		Performed:    r.performed.Load(),
		Retries:      r.retries.Load(),
		AppErrors:    r.appErrs.Load(),
		Timeouts:     r.timeouts.Load(),
		FastFails:    r.fastFails.Load(),
		RePerformed:  r.rePerform.Load(),
		BreakerState: r.breaker.State(),
		BreakerTrips: r.breaker.Trips(),
	}
	if r.nestedLat.N() > 0 {
		qs := r.nestedLat.Quantiles(0.99)
		m.LatencyMeanMs = float64(r.nestedLat.Mean()) / float64(time.Millisecond)
		m.LatencyP99Ms = float64(qs[0]) / float64(time.Millisecond)
	}
	return m
}

// ClassMetrics snapshots the class-aware admission counters (conflict-
// class early scheduling). ok is false when the replica does not run a
// class-aware scheduler. The snapshot is taken under the runtime's
// decision lock, so it is consistent with a quiescent instant.
func (r *Replica) ClassMetrics() (stats core.ClassStats, ok bool) {
	cs, isClass := r.sched.(core.ClassScheduler)
	if !isClass {
		return core.ClassStats{}, false
	}
	r.rt.External(func() { stats = cs.ClassStats() })
	return stats, true
}

// isPerformer reports whether this replica performs external calls. For
// LSA the leader performs them (it is ahead of the followers anyway).
// On the real cluster the performer is the current sequencer — the role
// the view-change protocol moves on failure — while the simulator keeps
// the paper's lowest-live-member rule.
func (r *Replica) isPerformer() bool {
	if r.cfg.Group == nil {
		return false // detached replay: nested replies come from the log
	}
	if r.cfg.Kind == KindLSA {
		return r.cfg.ID == r.cfg.LeaderID
	}
	if r.cfg.Group.Distributed() {
		return r.cfg.ID == r.cfg.Group.CurrentSequencer()
	}
	live := r.cfg.Group.LiveMembers()
	return len(live) > 0 && r.cfg.ID == live[0]
}

// onViewChange runs after the group adopts a new sequencing view. If
// this replica just became the performer it re-runs any nested calls
// still waiting for an outcome: the old performer may have crashed
// between executing the external call and broadcasting the result,
// which would otherwise stall those threads on every replica forever.
// Re-performed calls present the original idempotency keys, so a
// memoising backend answers with the already-applied outcomes rather
// than re-running side effects; the resulting outcomes travel the total
// order like originals, and a duplicate (the old performer's broadcast
// did make it out) lands in stashedNest under a key that is never
// reused, so it is inert.
func (r *Replica) onViewChange(view uint64, seq ids.ReplicaID) {
	if r.cfg.ID != seq {
		return
	}
	r.mu.Lock()
	type pend struct {
		key nestedKey
		arg lang.Value
	}
	ps := make([]pend, 0, len(r.waitingNest))
	for k := range r.waitingNest {
		ps = append(ps, pend{k, r.nestArgs[k]})
	}
	r.mu.Unlock()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].key.req != ps[j].key.req {
			return ps[i].key.req < ps[j].key.req
		}
		return ps[i].key.n < ps[j].key.n
	})
	for _, p := range ps {
		// Unmanaged path: no virtual-clock detach or SleepOrdered — this
		// runs on a takeover goroutine, and the simulated latency was
		// already paid (or lost) by the dead performer.
		r.rePerform.Add(1)
		r.perform(p.key, p.arg, false)
	}
}

// StartDummyPump makes this replica broadcast Dummy requests every
// interval until StopDummyPump is called. Only the performer replica
// should run a pump (one source suffices); the messages pass through the
// group communication like everything else — the overhead the paper
// attributes to the PDS adaptation.
func (r *Replica) StartDummyPump(interval time.Duration) {
	if r.dummyStop != nil {
		return
	}
	stop := make(chan struct{})
	r.dummyStop = stop
	r.cfg.Clock.Go(func() {
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.cfg.Clock.Sleep(interval)
			select {
			case <-stop:
				return
			default:
			}
			seq++
			if err := r.node.Broadcast(Dummy{Seq: seq}); err != nil {
				// A sequencer election is in flight: the rejected dummy
				// never entered the total order, so reuse its number on
				// the next tick instead of leaving a hole.
				seq--
				if !errors.Is(err, gcs.ErrNoSequencer) {
					r.logf("replica %d: dummy pump: %v", r.cfg.ID, err)
				}
			}
		}
	})
}

func (r *Replica) logf(format string, args ...interface{}) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// StopDummyPump stops the dummy generator.
func (r *Replica) StopDummyPump() {
	if r.dummyStop != nil {
		close(r.dummyStop)
		r.dummyStop = nil
	}
}
