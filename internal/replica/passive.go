package replica

import (
	"time"

	"detmt/internal/analysis"
	"detmt/internal/vclock"
)

// Passive replication (paper Sect. 1): a primary executes all requests
// while backups merely record the totally ordered message log (Role ==
// RoleBackup). When the primary fails, a backup reconstructs the
// primary's state by re-executing the log — which is consistent with the
// failed primary *only because* the scheduler is deterministic. Replay
// reproduces the original delivery instants on the virtual clock, so
// even timing-sensitive strategies (MAT's promotions happen relative to
// thread progress) re-derive the same schedule.

// Replay re-executes a recorded log on a fresh, detached replica and
// returns it. Call from a managed goroutine; the caller should let the
// clock run to quiescence before inspecting the state. LSA logs cannot be
// replayed (the leader's decision stream is not part of the total order);
// use a deterministic scheduler kind.
func Replay(clock vclock.Clock, res *analysis.Result, kind SchedulerKind, pdsWindow int, log []LogEntry) *Replica {
	return ReplayDetached(clock, Config{
		Analysis:  res,
		Kind:      kind,
		PDSWindow: pdsWindow,
	}, log)
}

// ReplayDetached is Replay with full Config control, for replay modes the
// positional arguments cannot express — most importantly re-admitting a
// log under a different admission discipline: the recorded Message.Class
// of every entry rides along, so a log captured from a class-parallel
// cluster replays on a serial replica (and vice versa), which is how the
// hash-equivalence tests compare the two schedules over an identical
// total order. ID, Clock, Group and Role are overridden.
func ReplayDetached(clock vclock.Clock, cfg Config, log []LogEntry) *Replica {
	if cfg.Kind == KindLSA {
		panic("replica: LSA logs are not replayable without the decision stream")
	}
	cfg.ID = 1
	cfg.Clock = clock
	cfg.Group = nil // detached: no network, replies discarded
	cfg.Role = RoleActive
	r := New(cfg)
	clock.Go(func() { feedLog(clock, r, log) })
	return r
}

// feedLog re-delivers a recorded log with the live system's exact
// discipline: original inter-message delays, and each message applied
// only at a quiescent instant (the per-node delivery loops do the same),
// so the replayed admissions land at the same points relative to thread
// progress as they originally did.
func feedLog(clock vclock.Clock, r *Replica, log []LogEntry) {
	var gate vclock.Parker
	if v, ok := clock.(*vclock.Virtual); ok {
		gate = v.NewOrderedParker("replay feeder", ^uint64(0)-512)
	} else {
		gate = clock.NewParker()
	}
	var base, prev time.Duration
	if len(log) > 0 {
		base = log[0].At
	}
	for _, e := range log {
		rel := e.At - base
		if d := rel - prev; d > 0 {
			clock.Sleep(d)
		}
		prev = rel
		gate.ParkTimeout(0) // returns at the next quiescent instant
		r.apply(e.Msg)
	}
}

// ReplayFailover performs a checkpoint-aware failover from a backup: the
// fresh replica starts from the backup's latest checkpoint snapshot and
// replays only the log tail — the incremental-update scheme the paper
// attributes to passive replication systems.
func ReplayFailover(clock vclock.Clock, res *analysis.Result, kind SchedulerKind, pdsWindow int, backup *Replica) *Replica {
	snapshot, tail := backup.FailoverData()
	r := New(Config{
		ID:        1,
		Clock:     clock,
		Analysis:  res,
		Kind:      kind,
		PDSWindow: pdsWindow,
	})
	for k, v := range snapshot {
		r.in.SetField(k, v)
	}
	clock.Go(func() { feedLog(clock, r, tail) })
	return r
}
