package replica

import (
	"errors"
	"sync"
	"time"

	"detmt/internal/gcs"
	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/vclock"
)

// Client is a replicated-object client stub: it broadcasts each request
// into the group's total order and accepts the first reply, ignoring the
// redundant ones (the semantics the paper assumes, and the reason LSA's
// leader determines the client-perceived latency).
type Client struct {
	id    ids.ClientID
	clock vclock.Clock
	ep    *gcs.ClientEndpoint

	mu         sync.Mutex
	pending    map[ids.RequestID]*call
	seq        uint32
	replies    int
	dupReplies int
}

type call struct {
	parker vclock.Parker
	uid    uint64
	value  lang.Value
	err    string
	done   bool
}

// NewClient registers a client endpoint with the group.
func NewClient(clock vclock.Clock, g *gcs.Group, id ids.ClientID) *Client {
	c := &Client{
		id:      id,
		clock:   clock,
		ep:      g.NewClientEndpoint(id),
		pending: map[ids.RequestID]*call{},
	}
	c.ep.SetOnReply(c.onReply)
	return c
}

// ID returns the client id.
func (c *Client) ID() ids.ClientID { return c.id }

// SetUIDBase forwards to the endpoint's uid-base (see
// gcs.ClientEndpoint.SetUIDBase): a restarted client process must number
// its requests above its previous incarnation's.
func (c *Client) SetUIDBase(base uint64) { c.ep.SetUIDBase(base) }

// ReplyStats returns how many replies arrived in total and how many were
// redundant (later replicas answering an already-completed request).
func (c *Client) ReplyStats() (total, redundant int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replies, c.dupReplies
}

func (c *Client) onReply(from ids.ReplicaID, p gcs.Payload) {
	rep, ok := p.(Reply)
	if !ok {
		return
	}
	c.mu.Lock()
	c.replies++
	ca := c.pending[rep.Req]
	if ca == nil || ca.done {
		c.dupReplies++
		c.mu.Unlock()
		return
	}
	ca.done = true
	ca.value = rep.Value
	ca.err = rep.Err
	uid := ca.uid
	c.mu.Unlock()
	c.ep.Ack(uid)
	ca.parker.Unpark()
}

// Pending is an in-flight invocation started by Pipeline.
type Pending struct {
	c     *Client
	req   ids.RequestID
	ca    *call
	start time.Duration
}

// Pipeline broadcasts a batch of invocations of the same method as one
// atomic unit (a single wire frame on batching transports, so the
// sequencer observes the burst contiguously) and returns handles to
// collect the replies. Distributed determinism tests use it to make the
// total order a burst receives reproducible across runs.
func (c *Client) Pipeline(method string, argsList [][]lang.Value) []*Pending {
	ps := make([]*Pending, len(argsList))
	payloads := make([]gcs.Payload, len(argsList))
	c.mu.Lock()
	for i, args := range argsList {
		c.seq++
		req := ids.MakeRequestID(c.id, c.seq)
		ca := &call{parker: c.clock.NewParker()}
		c.pending[req] = ca
		ps[i] = &Pending{c: c, req: req, ca: ca}
		payloads[i] = Request{Req: req, Method: method, Args: args}
	}
	c.mu.Unlock()
	start := c.clock.Now()
	uids, err := c.ep.BroadcastBatch(payloads)
	c.mu.Lock()
	for i, p := range ps {
		p.ca.uid = uids[i]
		p.start = start
		if err != nil {
			// Every member is crash-detected: the batch will never be
			// ordered, so fail the calls instead of parking forever.
			p.ca.done = true
			p.ca.err = err.Error()
		}
	}
	c.mu.Unlock()
	if err != nil {
		for _, p := range ps {
			c.ep.Ack(p.ca.uid)
			p.ca.parker.Unpark()
		}
	}
	return ps
}

// Call names one invocation for InvokeBatch.
type Call struct {
	Method string
	Args   []lang.Value
}

// InvokeBatch broadcasts several (possibly heterogeneous) invocations
// as one atomic unit — a single wire frame on batching transports — and
// returns handles to collect the replies. It is Pipeline with per-call
// methods: the open-loop load generator's submit pump uses it to
// coalesce a flush window's arrivals into one client→sequencer frame.
func (c *Client) InvokeBatch(calls []Call) []*Pending {
	ps := make([]*Pending, len(calls))
	payloads := make([]gcs.Payload, len(calls))
	c.mu.Lock()
	for i, cl := range calls {
		c.seq++
		req := ids.MakeRequestID(c.id, c.seq)
		ca := &call{parker: c.clock.NewParker()}
		c.pending[req] = ca
		ps[i] = &Pending{c: c, req: req, ca: ca}
		payloads[i] = Request{Req: req, Method: cl.Method, Args: cl.Args}
	}
	c.mu.Unlock()
	start := c.clock.Now()
	uids, err := c.ep.BroadcastBatch(payloads)
	c.mu.Lock()
	for i, p := range ps {
		p.ca.uid = uids[i]
		p.start = start
		if err != nil {
			p.ca.done = true
			p.ca.err = err.Error()
		}
	}
	c.mu.Unlock()
	if err != nil {
		for _, p := range ps {
			c.ep.Ack(p.ca.uid)
			p.ca.parker.Unpark()
		}
	}
	return ps
}

// Wait blocks (on the clock) until the first reply for this invocation
// arrives and returns the reply value and the client-perceived latency.
func (p *Pending) Wait() (lang.Value, time.Duration, error) {
	p.ca.parker.Park()
	latency := p.c.clock.Now() - p.start
	p.c.mu.Lock()
	delete(p.c.pending, p.req)
	value, errStr := p.ca.value, p.ca.err
	p.c.mu.Unlock()
	if errStr != "" {
		return value, latency, errors.New(errStr)
	}
	return value, latency, nil
}

// Invoke performs one remote method invocation and blocks (on the clock)
// until the first reply arrives. It returns the reply value and the
// client-perceived latency. Call it from a managed goroutine.
func (c *Client) Invoke(method string, args ...lang.Value) (lang.Value, time.Duration, error) {
	c.mu.Lock()
	c.seq++
	req := ids.MakeRequestID(c.id, c.seq)
	ca := &call{parker: c.clock.NewParker()}
	c.pending[req] = ca
	c.mu.Unlock()

	start := c.clock.Now()
	uid, err := c.ep.Broadcast(Request{Req: req, Method: method, Args: args})
	if err != nil {
		// No live sequencer: fail fast rather than park forever, and
		// drop the uid from the endpoint's retransmit set so a later
		// view change does not resurrect a request the caller already
		// saw fail.
		c.ep.Ack(uid)
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
		return nil, 0, err
	}
	c.mu.Lock()
	ca.uid = uid
	c.mu.Unlock()

	ca.parker.Park()
	latency := c.clock.Now() - start

	c.mu.Lock()
	delete(c.pending, req)
	value, errStr := ca.value, ca.err
	c.mu.Unlock()
	if errStr != "" {
		return value, latency, errors.New(errStr)
	}
	return value, latency, nil
}
