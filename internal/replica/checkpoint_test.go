package replica

import (
	"reflect"
	"testing"
	"time"

	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/vclock"
)

// TestCheckpointedFailover exercises the paper's incremental passive
// replication: the primary broadcasts StateUpdate checkpoints at
// quiescent points; a backup fails over from the latest checkpoint plus
// the log tail instead of replaying everything.
func TestCheckpointedFailover(t *testing.T) {
	c := newCluster(t, KindMAT, 3, func(cfg *Config) {
		if cfg.ID == 1 {
			cfg.CheckpointEvery = 2
		} else {
			cfg.Role = RoleBackup
		}
	})
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		for k := 0; k < 5; k++ {
			if _, _, err := client.Invoke("deposit", int64(k%8), int64(10)); err != nil {
				t.Errorf("deposit: %v", err)
			}
			// Sequential requests: the primary is quiescent after each,
			// so every CheckpointEvery-th completion checkpoints.
			c.v.Sleep(time.Millisecond)
		}
	})
	primary := c.reps[1].Instance().Snapshot()
	if primary["total"] != int64(50) {
		t.Fatalf("primary total %v", primary["total"])
	}

	backup := c.reps[2]
	snapshot, tail := backup.FailoverData()
	if snapshot == nil {
		t.Fatal("backup received no checkpoint")
	}
	// With CheckpointEvery=2 and 5 requests, the last checkpoint covers
	// request 4: the snapshot already holds 40 and the tail holds only
	// the 5th request (plus nothing else; deposits have no nested calls).
	if snapshot["total"] != int64(40) {
		t.Fatalf("checkpoint total %v, want 40", snapshot["total"])
	}
	fullLog := backup.Log()
	if len(tail) >= len(fullLog) {
		t.Fatalf("tail (%d entries) not shorter than the full log (%d)", len(tail), len(fullLog))
	}
	// The backup's own instance reflects the checkpoint.
	if got := backup.Instance().GetField("total"); got != int64(40) {
		t.Fatalf("backup installed state %v, want 40", got)
	}

	// Failover from checkpoint + tail reproduces the primary state.
	v2 := vclock.NewVirtual()
	done := make(chan struct{})
	var restored *Replica
	v2.Go(func() {
		defer close(done)
		restored = ReplayFailover(v2, c.res, KindMAT, 4, backup)
		v2.Sleep(2 * time.Second)
	})
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("failover replay timed out")
	}
	if !reflect.DeepEqual(restored.Instance().Snapshot(), primary) {
		t.Fatalf("restored %v != primary %v", restored.Instance().Snapshot(), primary)
	}
}

// TestCheckpointSkippedWhileBusy verifies the quiescence condition: with
// overlapping requests the primary defers checkpoints until no thread is
// in flight, so snapshots are never torn.
func TestCheckpointSkippedWhileBusy(t *testing.T) {
	c := newCluster(t, KindMAT, 2, func(cfg *Config) {
		if cfg.ID == 1 {
			cfg.CheckpointEvery = 1
		} else {
			cfg.Role = RoleBackup
		}
	})
	c.drive(func() {
		g := vclock.NewGroup(c.v)
		for ci := 0; ci < 4; ci++ {
			client := NewClient(c.v, c.g, ids.ClientID(ci+1))
			cell := int64(ci)
			g.Go(func() {
				if _, _, err := client.Invoke("slow", cell); err != nil {
					t.Errorf("slow: %v", err)
				}
			})
		}
		g.Wait()
	})
	backup := c.reps[2]
	snapshot, tail := backup.FailoverData()
	// Whatever checkpoints happened, failover must still reproduce the
	// primary exactly.
	_ = snapshot
	v2 := vclock.NewVirtual()
	done := make(chan struct{})
	var restored *Replica
	v2.Go(func() {
		defer close(done)
		restored = ReplayFailover(v2, c.res, KindMAT, 4, backup)
		v2.Sleep(2 * time.Second)
	})
	<-done
	if !reflect.DeepEqual(restored.Instance().Snapshot(), c.reps[1].Instance().Snapshot()) {
		t.Fatalf("restored %v != primary %v (tail %d entries)",
			restored.Instance().Snapshot(), c.reps[1].Instance().Snapshot(), len(tail))
	}
}

// TestFailoverWithoutCheckpointFallsBackToFullReplay covers the
// no-checkpoint path of FailoverData.
func TestFailoverWithoutCheckpointFallsBackToFullReplay(t *testing.T) {
	c := newCluster(t, KindSAT, 2, func(cfg *Config) {
		if cfg.ID != 1 {
			cfg.Role = RoleBackup
		}
	})
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		if _, _, err := client.Invoke("deposit", int64(1), int64(7)); err != nil {
			t.Errorf("deposit: %v", err)
		}
	})
	backup := c.reps[2]
	snapshot, tail := backup.FailoverData()
	if snapshot != nil {
		t.Fatal("unexpected checkpoint")
	}
	if len(tail) != len(backup.Log()) {
		t.Fatalf("tail %d != full log %d", len(tail), len(backup.Log()))
	}
	var _ lang.Value // keep the import aligned with the other tests
}
