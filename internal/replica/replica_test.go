package replica

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"detmt/internal/analysis"
	"detmt/internal/gcs"
	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/vclock"
)

const bankSrc = `
object Bank {
    monitor cells[8];
    monitor lock;
    field total;

    method deposit(cell, amount) {
        var m = cells[cell];
        sync (m) {
            compute(1ms);
        }
        sync (lock) {
            total = total + amount;
        }
    }

    method totalOf() {
        var v = 0;
        sync (lock) {
            v = total;
        }
        return v;
    }

    method echoNested(x) {
        var y = nested(x + 1);
        return y;
    }

    method slow(cell) {
        var m = cells[cell];
        compute(3ms);
        sync (m) {
            compute(2ms);
        }
        compute(5ms);
    }
}
`

type cluster struct {
	t    *testing.T
	v    *vclock.Virtual
	g    *gcs.Group
	res  *analysis.Result
	reps map[ids.ReplicaID]*Replica
}

func newCluster(t *testing.T, kind SchedulerKind, n int, tweak func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		t:    t,
		v:    vclock.NewVirtual(),
		res:  analysis.MustAnalyze(lang.MustParse(bankSrc)),
		reps: map[ids.ReplicaID]*Replica{},
	}
	members := make([]ids.ReplicaID, n)
	for i := range members {
		members[i] = ids.ReplicaID(i + 1)
	}
	c.g = gcs.NewGroup(gcs.Config{
		Clock:         c.v,
		Members:       members,
		Latency:       time.Millisecond,
		DetectTimeout: 20 * time.Millisecond,
	})
	for _, id := range members {
		cfg := Config{
			ID:            id,
			Clock:         c.v,
			Group:         c.g,
			Analysis:      c.res,
			Kind:          kind,
			NestedLatency: 4 * time.Millisecond,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		cfg.ID = id
		c.reps[id] = New(cfg)
	}
	for _, r := range c.reps {
		r.Instance().SetField("total", int64(0))
	}
	return c
}

// drive runs fn as a managed goroutine and flushes the simulation.
func (c *cluster) drive(fn func()) {
	c.t.Helper()
	done := make(chan struct{})
	c.v.Go(func() {
		defer close(done)
		fn()
		c.v.Sleep(2 * time.Second) // flush all in-flight work
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		c.t.Fatal("cluster test timed out in real time")
	}
}

// assertConverged checks that all replicas reached the same object state.
func (c *cluster) assertConverged() map[string]lang.Value {
	c.t.Helper()
	var ref map[string]lang.Value
	var refID ids.ReplicaID
	for id, r := range c.reps {
		snap := r.Instance().Snapshot()
		if ref == nil {
			ref, refID = snap, id
			continue
		}
		if !reflect.DeepEqual(snap, ref) {
			c.t.Fatalf("replica %v state %v != replica %v state %v", id, snap, refID, ref)
		}
	}
	return ref
}

// assertSameSchedule compares consistency hashes across replicas.
func (c *cluster) assertSameSchedule() {
	c.t.Helper()
	var ref uint64
	first := true
	for id, r := range c.reps {
		h := r.Runtime().Trace().ConsistencyHash()
		if first {
			ref, first = h, false
			continue
		}
		if h != ref {
			c.t.Fatalf("replica %v schedule hash %x differs from %x", id, h, ref)
		}
	}
}

func TestAllSchedulersConvergeUnderLoad(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			c := newCluster(t, kind, 3, func(cfg *Config) { cfg.PDSWindow = 2; cfg.PDSRelaxed = true })
			var sum int64
			c.drive(func() {
				g := vclock.NewGroup(c.v)
				rng := ids.NewRNG(42)
				for ci := 0; ci < 4; ci++ {
					client := NewClient(c.v, c.g, ids.ClientID(ci+1))
					cell := int64(rng.Intn(8))
					amount := int64(rng.Intn(100) + 1)
					sum += 3 * amount
					g.Go(func() {
						for k := 0; k < 3; k++ {
							if _, _, err := client.Invoke("deposit", cell, amount); err != nil {
								t.Errorf("deposit: %v", err)
							}
						}
					})
				}
				g.Wait()
			})
			state := c.assertConverged()
			if state["total"] != sum {
				t.Fatalf("total %v, want %d", state["total"], sum)
			}
			for id, r := range c.reps {
				if r.Completed() != 12 {
					t.Fatalf("replica %v completed %d of 12", id, r.Completed())
				}
			}
			if kind != KindLSA {
				c.assertSameSchedule()
			}
		})
	}
}

func TestNestedInvocationOnePerformer(t *testing.T) {
	c := newCluster(t, KindMAT, 3, nil)
	var value lang.Value
	var latency time.Duration
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		v, lat, err := client.Invoke("echoNested", int64(41))
		if err != nil {
			t.Errorf("invoke: %v", err)
		}
		value, latency = v, lat
	})
	if value != int64(42) {
		t.Fatalf("nested reply %v, want 42 (service echoes arg+1... arg is x+1=42)", value)
	}
	// Latency must include the nested external call (4ms) plus transport.
	if latency < 4*time.Millisecond {
		t.Fatalf("latency %v too small for a nested call", latency)
	}
	c.assertConverged()
	c.assertSameSchedule()
	// Exactly one NestedReply broadcast happened (one performer); total
	// broadcasts = 1 request + 1 nested reply.
	_, broadcasts, _ := c.g.Stats().Snapshot()
	if broadcasts != 2 {
		t.Fatalf("broadcasts %d, want 2 (request + one nested reply)", broadcasts)
	}
}

func TestDuplicateRequestSuppressed(t *testing.T) {
	c := newCluster(t, KindSEQ, 3, nil)
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		if _, _, err := client.Invoke("deposit", int64(0), int64(10)); err != nil {
			t.Errorf("deposit: %v", err)
		}
		// Byzantine re-broadcast of an identical request id via a second
		// endpoint is not possible through the public API; replica-level
		// dedup is exercised through the gcs retransmission path in the
		// takeover test. Here: two distinct requests must both apply.
		if _, _, err := client.Invoke("deposit", int64(0), int64(5)); err != nil {
			t.Errorf("deposit: %v", err)
		}
	})
	if got := c.assertConverged()["total"]; got != int64(15) {
		t.Fatalf("total %v", got)
	}
}

func TestClientFirstReplyWinsAndCountsDuplicates(t *testing.T) {
	c := newCluster(t, KindMAT, 3, nil)
	var client *Client
	c.drive(func() {
		client = NewClient(c.v, c.g, 1)
		if _, _, err := client.Invoke("deposit", int64(1), int64(7)); err != nil {
			t.Errorf("deposit: %v", err)
		}
	})
	total, redundant := client.ReplyStats()
	if total != 3 || redundant != 2 {
		t.Fatalf("replies=%d redundant=%d, want 3/2", total, redundant)
	}
}

func TestClientErrorPropagation(t *testing.T) {
	c := newCluster(t, KindSEQ, 3, nil)
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		if _, _, err := client.Invoke("nosuchmethod"); err == nil {
			t.Error("expected error for unknown method")
		}
	})
}

func TestLSALeaderFasterThanFollowers(t *testing.T) {
	c := newCluster(t, KindLSA, 3, nil)
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		if _, _, err := client.Invoke("slow", int64(2)); err != nil {
			t.Errorf("slow: %v", err)
		}
	})
	c.assertConverged()
	// The leader's exit must precede every follower's exit.
	exitOf := func(id ids.ReplicaID) time.Duration {
		for _, e := range c.reps[id].Runtime().Trace().Events() {
			if e.Kind.String() == "exit" {
				return e.At
			}
		}
		t.Fatalf("replica %v never exited", id)
		return 0
	}
	leader := exitOf(1)
	for _, id := range []ids.ReplicaID{2, 3} {
		if exitOf(id) < leader {
			t.Fatalf("follower %v finished before the leader", id)
		}
	}
}

func TestPDSWithDummyPump(t *testing.T) {
	// PDS window 3 but only one real client: without dummies the single
	// request would starve at the barrier; the pump unblocks it.
	c := newCluster(t, KindPDS, 3, func(cfg *Config) { cfg.PDSWindow = 3 })
	// Leftover dummy threads legitimately starve at the final barrier
	// once the pump stops; ignore the quiescence report for them.
	c.v.SetDeadlockHandler(func(string) {})
	var errInvoke error
	c.drive(func() {
		c.reps[1].StartDummyPump(2 * time.Millisecond)
		client := NewClient(c.v, c.g, 1)
		_, _, errInvoke = client.Invoke("deposit", int64(0), int64(3))
		for _, r := range c.reps {
			r.StopDummyPump()
		}
	})
	if errInvoke != nil {
		t.Fatalf("invoke: %v", errInvoke)
	}
	if got := c.assertConverged()["total"]; got != int64(3) {
		t.Fatalf("total %v", got)
	}
}

func TestPassiveReplicationReplay(t *testing.T) {
	// Primary (active) + two backups (log only). After the workload, a
	// backup replays its log and must reproduce the primary's state.
	c := newCluster(t, KindMAT, 3, func(cfg *Config) {
		if cfg.ID != 1 {
			cfg.Role = RoleBackup
		}
	})
	c.drive(func() {
		g := vclock.NewGroup(c.v)
		for ci := 0; ci < 3; ci++ {
			client := NewClient(c.v, c.g, ids.ClientID(ci+1))
			cell := int64(ci)
			g.Go(func() {
				for k := 0; k < 2; k++ {
					// Only the primary answers; first reply = its reply.
					if _, _, err := client.Invoke("deposit", cell, int64(10)); err != nil {
						t.Errorf("deposit: %v", err)
					}
				}
				if _, _, err := client.Invoke("echoNested", cell); err != nil {
					t.Errorf("echoNested: %v", err)
				}
			})
		}
		g.Wait()
	})
	primary := c.reps[1].Instance().Snapshot()
	if primary["total"] != int64(60) {
		t.Fatalf("primary total %v", primary["total"])
	}
	// Backups executed nothing.
	if c.reps[2].Completed() != 0 {
		t.Fatalf("backup executed %d requests", c.reps[2].Completed())
	}
	backupLog := c.reps[2].Log()
	if len(backupLog) == 0 {
		t.Fatal("backup log empty")
	}

	// Failover: replay the backup's log on a fresh virtual clock.
	v2 := vclock.NewVirtual()
	var replayed *Replica
	done := make(chan struct{})
	v2.Go(func() {
		defer close(done)
		replayed = Replay(v2, c.res, KindMAT, 4, backupLog)
		replayed.Instance().SetField("total", int64(0))
		v2.Sleep(5 * time.Second)
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("replay timed out")
	}
	got := replayed.Instance().Snapshot()
	if !reflect.DeepEqual(got, primary) {
		t.Fatalf("replayed state %v != primary %v", got, primary)
	}
	// The replayed schedule matches the primary's schedule.
	if replayed.Runtime().Trace().ConsistencyHash() != c.reps[1].Runtime().Trace().ConsistencyHash() {
		t.Fatal("replayed schedule differs from the primary's")
	}
}

func TestSequencerCrashDuringLoad(t *testing.T) {
	// Crash the sequencer mid-workload: surviving replicas still converge
	// and the client's pending request completes after takeover.
	c := newCluster(t, KindMAT, 3, nil)
	var lat time.Duration
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		if _, _, err := client.Invoke("deposit", int64(0), int64(1)); err != nil {
			t.Errorf("warmup: %v", err)
		}
		c.g.Crash(1)
		var err error
		_, lat, err = client.Invoke("deposit", int64(1), int64(2))
		if err != nil {
			t.Errorf("post-crash deposit: %v", err)
		}
	})
	// Takeover adds at least the detection timeout to the latency.
	if lat < 20*time.Millisecond {
		t.Fatalf("post-crash latency %v, want >= detection timeout", lat)
	}
	s2 := c.reps[2].Instance().Snapshot()
	s3 := c.reps[3].Instance().Snapshot()
	if !reflect.DeepEqual(s2, s3) || s2["total"] != int64(3) {
		t.Fatalf("survivor states %v / %v", s2, s3)
	}
}

func TestReplayRejectsLSA(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for LSA replay")
		}
	}()
	Replay(vclock.NewVirtual(), analysis.MustAnalyze(lang.MustParse(bankSrc)), KindLSA, 4, nil)
}

func TestUnknownSchedulerKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v := vclock.NewVirtual()
	g := gcs.NewGroup(gcs.Config{Clock: v, Members: []ids.ReplicaID{1}, Latency: time.Millisecond})
	New(Config{ID: 1, Clock: v, Group: g, Analysis: analysis.MustAnalyze(lang.MustParse(bankSrc)), Kind: "BOGUS"})
}

func ExampleAllKinds() {
	fmt.Println(AllKinds())
	// Output: [SEQ SAT LSA PDS MAT MAT+LLA PMAT]
}

func TestLSALeaderSelection(t *testing.T) {
	c := newCluster(t, KindLSA, 3, func(cfg *Config) { cfg.LeaderID = 2 })
	if c.reps[1].IsLSALeader() || !c.reps[2].IsLSALeader() || c.reps[3].IsLSALeader() {
		t.Fatal("explicit LeaderID not honoured")
	}
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		if _, _, err := client.Invoke("deposit", int64(0), int64(4)); err != nil {
			t.Errorf("deposit: %v", err)
		}
	})
	if got := c.assertConverged()["total"]; got != int64(4) {
		t.Fatalf("total %v", got)
	}
}
