package replica

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"detmt/internal/analysis"
	"detmt/internal/gcs"
	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/vclock"
)

// genSource generates a random but well-formed object whose state
// updates all commute (counter increments). Because the updates commute,
// the final object state must be identical for *every* correct
// scheduler, not just across replicas of one scheduler — which turns the
// whole pipeline (parser → analysis → transformation → interpreter →
// scheduler → replication) into one end-to-end property check.
func genSource(seed uint64) (src string, methods []string) {
	rng := ids.NewRNG(seed)
	var b strings.Builder
	b.WriteString("object Rand {\n")
	b.WriteString("    monitor mons[6];\n")
	b.WriteString("    monitor single;\n")
	b.WriteString("    field acc;\n\n")
	nMethods := rng.Intn(3) + 2
	for mi := 0; mi < nMethods; mi++ {
		name := fmt.Sprintf("m%d", mi)
		methods = append(methods, name)
		fmt.Fprintf(&b, "    method %s(p) {\n", name)
		nOps := rng.Intn(4) + 1
		for oi := 0; oi < nOps; oi++ {
			switch rng.Intn(8) {
			case 0, 1: // compute
				fmt.Fprintf(&b, "        compute(%dus);\n", rng.Intn(2000)+100)
			case 2: // sync on the single monitor field
				b.WriteString("        sync (single) { acc = acc + 1; }\n")
			case 3: // sync on a constant array element
				fmt.Fprintf(&b, "        sync (mons[%d]) { acc = acc + 2; }\n", rng.Intn(6))
			case 4: // sync on a parameter-indexed element (announceable)
				b.WriteString("        sync (mons[p % 6]) { acc = acc + 3; }\n")
			case 5: // branch with sync on one side
				fmt.Fprintf(&b, "        if (p %% 2 == %d) {\n", rng.Intn(2))
				fmt.Fprintf(&b, "            sync (mons[%d]) { acc = acc + 5; }\n", rng.Intn(6))
				b.WriteString("        } else {\n            compute(300us);\n        }\n")
			case 6: // fixed-count loop with a sync
				fmt.Fprintf(&b, "        repeat i : %d {\n", rng.Intn(3)+1)
				b.WriteString("            sync (mons[i]) { acc = acc + 1; }\n")
				b.WriteString("        }\n")
			case 7: // nested invocation
				b.WriteString("        nested(p);\n")
			}
		}
		b.WriteString("    }\n\n")
	}
	b.WriteString("}\n")
	return b.String(), methods
}

// runRandom executes the generated workload under one scheduler and
// returns the final state plus the per-replica schedule hashes.
func runRandom(t *testing.T, res *analysis.Result, kind SchedulerKind, methods []string, seed uint64) (map[string]lang.Value, []uint64) {
	t.Helper()
	v := vclock.NewVirtual()
	members := []ids.ReplicaID{1, 2, 3}
	g := gcs.NewGroup(gcs.Config{Clock: v, Members: members, Latency: 300 * time.Microsecond})
	var reps []*Replica
	for _, id := range members {
		r := New(Config{
			ID: id, Clock: v, Group: g, Analysis: res, Kind: kind,
			NestedLatency: 2 * time.Millisecond,
			PDSRelaxed:    true, PDSWindow: 2,
		})
		r.Instance().SetField("acc", int64(0))
		reps = append(reps, r)
	}
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		grp := vclock.NewGroup(v)
		rng := ids.NewRNG(seed ^ 0xabcdef)
		for ci := 0; ci < 3; ci++ {
			cl := NewClient(v, g, ids.ClientID(ci+1))
			crng := rng.Fork()
			grp.Go(func() {
				for k := 0; k < 2; k++ {
					method := methods[crng.Intn(len(methods))]
					arg := int64(crng.Intn(12))
					if _, _, err := cl.Invoke(method, arg); err != nil {
						t.Errorf("%s(%d): %v", method, arg, err)
					}
				}
			})
		}
		grp.Wait()
		v.Sleep(time.Second)
	})
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("random workload under %s timed out", kind)
	}
	var hashes []uint64
	for _, r := range reps {
		hashes = append(hashes, r.Runtime().Trace().ConsistencyHash())
	}
	return reps[0].Instance().Snapshot(), hashes
}

// TestRandomProgramsEndToEnd is the pipeline-wide property: for random
// programs, (a) all replicas of one run agree, (b) reruns are identical,
// and (c) the commutative final state is the same under every
// deterministic scheduler.
func TestRandomProgramsEndToEnd(t *testing.T) {
	kinds := []SchedulerKind{KindSEQ, KindSAT, KindPDS, KindMAT, KindMATLLA, KindPMAT}
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src, methods := genSource(seed)
			obj, err := lang.Parse(src)
			if err != nil {
				t.Fatalf("generated source does not parse: %v\n%s", err, src)
			}
			res, err := analysis.Analyze(obj)
			if err != nil {
				t.Fatalf("analysis: %v\n%s", err, src)
			}
			var refState map[string]lang.Value
			var refKind SchedulerKind
			for _, kind := range kinds {
				state, hashes := runRandom(t, res, kind, methods, seed)
				for _, h := range hashes[1:] {
					if h != hashes[0] {
						t.Fatalf("%s: replicas diverged\n%s", kind, src)
					}
				}
				// Rerun: identical hashes.
				_, hashes2 := runRandom(t, res, kind, methods, seed)
				for i := range hashes {
					if hashes[i] != hashes2[i] {
						t.Fatalf("%s: rerun diverged\n%s", kind, src)
					}
				}
				if refState == nil {
					refState, refKind = state, kind
					continue
				}
				if !reflect.DeepEqual(state, refState) {
					t.Fatalf("final state differs: %s=%v vs %s=%v\n%s",
						kind, state, refKind, refState, src)
				}
			}
		})
	}
}
