package replica

import (
	"fmt"
	"reflect"
	"testing"

	"detmt/internal/analysis"
	"detmt/internal/lang"
)

// TestSoakRandomPrograms widens the end-to-end property campaign: many
// more generated programs, every deterministic scheduler, replica
// agreement, and cross-scheduler state equality. Skipped with -short.
func TestSoakRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign")
	}
	kinds := []SchedulerKind{KindSEQ, KindSAT, KindPDS, KindMAT, KindMATLLA, KindPMAT}
	for seed := uint64(100); seed < 130; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			src, methods := genSource(seed)
			obj, err := lang.Parse(src)
			if err != nil {
				t.Fatalf("parse: %v\n%s", err, src)
			}
			res, err := analysis.Analyze(obj)
			if err != nil {
				t.Fatalf("analyse: %v\n%s", err, src)
			}
			var refState map[string]lang.Value
			for _, kind := range kinds {
				state, hashes := runRandom(t, res, kind, methods, seed)
				for _, h := range hashes[1:] {
					if h != hashes[0] {
						t.Fatalf("%s: replicas diverged\n%s", kind, src)
					}
				}
				if refState == nil {
					refState = state
					continue
				}
				if !reflect.DeepEqual(state, refState) {
					t.Fatalf("%s: state %v differs from %v\n%s", kind, state, refState, src)
				}
			}
		})
	}
}
