package replica

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"detmt/internal/analysis"
	"detmt/internal/backend"
	"detmt/internal/chaos"
	"detmt/internal/core"
	"detmt/internal/gcs"
	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/vclock"
)

// failingBackend returns an in-process backend whose every call fails
// with an application error. Application errors are deterministic
// service answers: never retried, and the breaker treats them as
// successes.
func failingBackend() backend.ExternalBackend {
	f := chaos.NewFaults(1)
	f.SetErrorRate(1)
	return backend.NewInProcess(nil, f)
}

// downBackend returns an in-process backend that swallows every call
// (a hung service): the caller's deadline converts each into a
// transport timeout, which the policy retries and the breaker counts.
func downBackend() backend.ExternalBackend {
	f := chaos.NewFaults(1)
	f.SetDown(true)
	return backend.NewInProcess(nil, f)
}

// TestNestedAppErrorDeterministic drives a nested call against a
// backend that answers with an application error on every replica's
// schedule: the performer broadcasts a NestedErr outcome, every member
// resumes the thread with the same catchable error value, and the
// cluster still agrees bit-for-bit.
func TestNestedAppErrorDeterministic(t *testing.T) {
	c := newCluster(t, KindMAT, 3, func(cfg *Config) {
		cfg.Backend = failingBackend()
	})
	var value lang.Value
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		v, _, err := client.Invoke("echoNested", int64(41))
		if err != nil {
			t.Errorf("invoke: %v", err)
		}
		value = v
	})
	ev, ok := value.(lang.ErrValue)
	if !ok {
		t.Fatalf("reply %v (%T), want a caught lang.ErrValue", value, value)
	}
	if !strings.Contains(string(ev), "injected backend error") {
		t.Fatalf("error value %q does not carry the backend's answer", ev)
	}
	c.assertConverged()
	c.assertSameSchedule()
	// One performer, one outcome: request + nested outcome broadcasts.
	_, broadcasts, _ := c.g.Stats().Snapshot()
	if broadcasts != 2 {
		t.Fatalf("broadcasts %d, want 2 (request + one nested outcome)", broadcasts)
	}
	if m := c.reps[1].NestedMetrics(); m.AppErrors != 1 || m.Performed != 1 {
		t.Fatalf("performer metrics %+v, want 1 performed / 1 app error", m)
	}
}

// TestNestedTimeoutDeterministic hangs the backend: the performer's
// per-call deadline expires, the retry budget drains, and the broadcast
// NestedTimeout outcome resumes every replica with the same error value
// instead of stalling the suspended thread forever.
func TestNestedTimeoutDeterministic(t *testing.T) {
	c := newCluster(t, KindMAT, 3, func(cfg *Config) {
		cfg.Backend = downBackend()
		cfg.NestedTimeout = 10 * time.Millisecond
		cfg.NestedRetries = 1
	})
	var value lang.Value
	c.drive(func() {
		client := NewClient(c.v, c.g, 1)
		v, _, err := client.Invoke("echoNested", int64(7))
		if err != nil {
			t.Errorf("invoke: %v", err)
		}
		value = v
	})
	if _, ok := value.(lang.ErrValue); !ok {
		t.Fatalf("reply %v (%T), want a caught lang.ErrValue", value, value)
	}
	c.assertConverged()
	c.assertSameSchedule()
	m := c.reps[1].NestedMetrics()
	if m.Timeouts != 1 {
		t.Fatalf("performer metrics %+v, want 1 timeout", m)
	}
	if m.Retries != 1 {
		t.Fatalf("performer metrics %+v, want 1 retry (budget of 1)", m)
	}
}

// TestNestedBreakerFastFail trips the breaker with repeated backend
// timeouts and checks that later nested calls fail fast — still as
// deterministic broadcast outcomes, so replicas agree on every
// fast-failed call too.
func TestNestedBreakerFastFail(t *testing.T) {
	c := newCluster(t, KindMAT, 3, func(cfg *Config) {
		cfg.Backend = downBackend()
		cfg.NestedTimeout = 5 * time.Millisecond
		cfg.NestedRetries = -1 // no retries: one failure per call
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = time.Hour // stays open for the whole test
	})
	c.drive(func() {
		g := vclock.NewGroup(c.v)
		for i := 0; i < 4; i++ {
			i := i
			client := NewClient(c.v, c.g, ids.ClientID(i+1))
			g.Go(func() {
				v, _, err := client.Invoke("echoNested", int64(i))
				if err != nil {
					t.Errorf("invoke %d: %v", i, err)
				}
				if _, ok := v.(lang.ErrValue); !ok {
					t.Errorf("invoke %d: reply %v (%T), want an error value", i, v, v)
				}
			})
		}
		g.Wait()
	})
	c.assertConverged()
	c.assertSameSchedule()
	m := c.reps[1].NestedMetrics()
	if m.BreakerTrips == 0 || m.BreakerState != "open" {
		t.Fatalf("breaker never tripped: %+v", m)
	}
	if m.FastFails == 0 {
		t.Fatalf("no fast-failed calls despite an open breaker: %+v", m)
	}
	if m.Performed != 4 {
		t.Fatalf("performed %d outcomes, want 4", m.Performed)
	}
}

// TestRePerformOrdering pins down the view-change takeover contract:
// when a promoted performer re-runs the calls the dead performer left
// pending, it must issue them in (request, call-number) order — a
// deterministic sequence — even while fresh nested calls race in
// concurrently. The group has two members but only replica 2 is
// instantiated, so while member 1 (the designated performer) is alive
// every nested call parks unperformed; killing member 1 makes the
// group's failover adopt a new view and fire replica 2's re-perform.
func TestRePerformOrdering(t *testing.T) {
	v := vclock.NewVirtual()
	v.EnablePacing(true)
	res := analysis.MustAnalyze(lang.MustParse(bankSrc))
	g := gcs.NewGroup(gcs.Config{
		Clock:         v,
		Members:       []ids.ReplicaID{1, 2},
		Latency:       time.Millisecond,
		DetectTimeout: 10 * time.Millisecond,
	})
	var mu sync.Mutex
	var performedKeys []string
	be := backend.NewInProcess(func(key string, arg lang.Value) (lang.Value, error) {
		mu.Lock()
		performedKeys = append(performedKeys, key)
		mu.Unlock()
		return arg, nil
	}, nil)
	r := New(Config{
		ID:            2,
		Clock:         v,
		Group:         g,
		Analysis:      res,
		Kind:          KindMAT,
		NestedLatency: time.Millisecond,
		Backend:       be,
	})
	r.Instance().SetField("total", int64(0))

	const parked = 5
	var wg sync.WaitGroup
	invoke := func(client ids.ClientID, arg int64) {
		cl := NewClient(v, g, client)
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			if _, _, err := cl.Invoke("echoNested", arg); err != nil {
				t.Errorf("client %v: invoke: %v", client, err)
			}
		})
	}
	for i := 0; i < parked; i++ {
		invoke(ids.ClientID(i+1), int64(i))
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		r.mu.Lock()
		n := len(r.waitingNest)
		r.mu.Unlock()
		if n == parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d nested calls parked", n, parked)
		}
		time.Sleep(2 * time.Millisecond)
	}
	r.mu.Lock()
	pending := make(map[string]bool, parked)
	for k := range r.waitingNest {
		pending[r.idemKey(k)] = true
	}
	r.mu.Unlock()

	// Member 1 dies. After DetectTimeout the group adopts the next view,
	// which fires replica 2's onViewChange and re-performs the parked
	// calls — while fresh nested calls race in concurrently.
	g.Crash(1)
	for i := 0; i < 3; i++ {
		invoke(ids.ClientID(parked+i+1), int64(parked+i))
	}
	wg.Wait()

	if got := r.NestedMetrics().RePerformed; got != parked {
		t.Fatalf("re-performed %d calls, want %d", got, parked)
	}
	mu.Lock()
	defer mu.Unlock()
	var reKeys []string
	for _, k := range performedKeys {
		if pending[k] {
			reKeys = append(reKeys, k)
		}
	}
	if len(reKeys) != parked {
		t.Fatalf("re-performed keys %v, want %d of them", reKeys, parked)
	}
	if !sort.SliceIsSorted(reKeys, func(i, j int) bool {
		return nestedKeyLess(t, reKeys[i], reKeys[j])
	}) {
		t.Fatalf("re-perform order %v not sorted by (request, call)", reKeys)
	}
}

// nestedKeyLess orders two idempotency keys by (request id, call number).
func nestedKeyLess(t *testing.T, a, b string) bool {
	t.Helper()
	var ar, an, br, bn uint64
	if _, err := fmt.Sscanf(a, "nested:%d:%d", &ar, &an); err != nil {
		t.Fatalf("bad idempotency key %q: %v", a, err)
	}
	if _, err := fmt.Sscanf(b, "nested:%d:%d", &br, &bn); err != nil {
		t.Fatalf("bad idempotency key %q: %v", b, err)
	}
	if ar != br {
		return ar < br
	}
	return an < bn
}

// TestDecisionTailEdges covers the windowed decision-log boundaries a
// rejoining follower can hit: a caller already caught up, a window that
// aged out underneath it, a request for the exact window start, and an
// unbounded (max <= 0) fetch.
func TestDecisionTailEdges(t *testing.T) {
	mk := func(idx uint64) LSADecision {
		return LSADecision{Index: idx, Event: core.LSAEvent{}}
	}
	r := &Replica{decIndex: 30}
	for i := uint64(11); i <= 30; i++ { // indices 1..10 aged out
		r.decLog = append(r.decLog, mk(i))
	}

	// Caller ahead of (or at) the frontier: caught up, nothing to send.
	if decs, more, ok := r.DecisionTail(31, 10); !ok || more || decs != nil {
		t.Fatalf("beyond frontier: decs=%v more=%v ok=%v, want nil/false/true", decs, more, ok)
	}

	// Aged-out start: the follower must fetch a checkpoint instead.
	if _, _, ok := r.DecisionTail(5, 10); ok {
		t.Fatal("aged-out fromIdx reported ok=true, want ok=false")
	}

	// Exact window start with a cap: the batch begins at the boundary.
	decs, more, ok := r.DecisionTail(11, 5)
	if !ok || !more || len(decs) != 5 || decs[0].Index != 11 || decs[4].Index != 15 {
		t.Fatalf("boundary fetch: decs=%d [%v..] more=%v ok=%v", len(decs), decs[0].Index, more, ok)
	}

	// max==0 disables the cap: the whole retained tail comes back.
	decs, more, ok = r.DecisionTail(11, 0)
	if !ok || more || len(decs) != 20 || decs[19].Index != 30 {
		t.Fatalf("uncapped fetch: decs=%d more=%v ok=%v", len(decs), more, ok)
	}

	// Last retained index alone.
	decs, more, ok = r.DecisionTail(30, 1)
	if !ok || more || len(decs) != 1 || decs[0].Index != 30 {
		t.Fatalf("frontier fetch: decs=%d more=%v ok=%v", len(decs), more, ok)
	}

	// Empty log: any in-window request is unanswerable.
	empty := &Replica{decIndex: 3}
	if _, _, ok := empty.DecisionTail(2, 1); ok {
		t.Fatal("empty log reported ok=true, want ok=false")
	}
}
