// Package chaos injects transport-level faults into a detmt deployment
// so the recovery subsystem can be exercised deliberately: severed
// connections (lost in-flight frames, forcing the wire layer's
// retransmission and dedup paths), added per-read latency, and peer
// partitions (dials to a blocked address fail until healed). Faults are
// driven by a seeded plan, so a chaos soak is reproducible.
//
// The injector sits in front of the transport's dialer (wire.Options.
// Dial) and tracks every connection it creates. It never corrupts
// bytes: the TCP framing assumes a clean stream, and the failure model
// under test is crash/partition/latency, not bit flips.
package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"

	"detmt/internal/ids"
)

// Injector wraps a dialer with fault hooks. The zero value is not
// usable; call New.
type Injector struct {
	mu      sync.Mutex
	delay   time.Duration
	blocked map[string]bool
	conns   map[*conn]struct{}

	// counters (Stats)
	severed      int
	dialsBlocked int
}

// New creates an idle injector (no faults active).
func New() *Injector {
	return &Injector{
		blocked: map[string]bool{},
		conns:   map[*conn]struct{}{},
	}
}

// Dial wraps base (nil selects net.Dial "tcp") into a fault-injecting
// dialer for wire.Options.Dial.
func (i *Injector) Dial(base func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if base == nil {
		base = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return func(addr string) (net.Conn, error) {
		i.mu.Lock()
		blocked := i.blocked[addr]
		if blocked {
			i.dialsBlocked++
		}
		i.mu.Unlock()
		if blocked {
			return nil, fmt.Errorf("chaos: %s is partitioned", addr)
		}
		c, err := base(addr)
		if err != nil {
			return nil, err
		}
		w := &conn{Conn: c, inj: i, addr: addr}
		i.mu.Lock()
		i.conns[w] = struct{}{}
		i.mu.Unlock()
		return w, nil
	}
}

// SetDelay adds d of latency to every connection read (0 disables).
func (i *Injector) SetDelay(d time.Duration) {
	i.mu.Lock()
	i.delay = d
	i.mu.Unlock()
}

// Block makes future dials to addr fail and severs existing connections
// to it — one direction of a network partition.
func (i *Injector) Block(addr string) {
	i.mu.Lock()
	i.blocked[addr] = true
	var victims []*conn
	for c := range i.conns {
		if c.addr == addr {
			victims = append(victims, c)
		}
	}
	i.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Unblock heals the partition toward addr.
func (i *Injector) Unblock(addr string) {
	i.mu.Lock()
	delete(i.blocked, addr)
	i.mu.Unlock()
}

// HealAll removes every partition and the read delay.
func (i *Injector) HealAll() {
	i.mu.Lock()
	i.blocked = map[string]bool{}
	i.delay = 0
	i.mu.Unlock()
}

// SeverAll force-closes every tracked connection (in-flight frames are
// lost; the wire layer redials and retransmits). Returns how many were
// closed.
func (i *Injector) SeverAll() int {
	i.mu.Lock()
	victims := make([]*conn, 0, len(i.conns))
	for c := range i.conns {
		victims = append(victims, c)
	}
	i.severed += len(victims)
	i.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return len(victims)
}

// Stats reports fault counters: connections severed and dials refused.
func (i *Injector) Stats() (severed, dialsBlocked int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.severed, i.dialsBlocked
}

func (i *Injector) readDelay() time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.delay
}

func (i *Injector) forget(c *conn) {
	i.mu.Lock()
	delete(i.conns, c)
	i.mu.Unlock()
}

// conn is a tracked connection applying the injector's read delay.
type conn struct {
	net.Conn
	inj  *Injector
	addr string

	closeOnce sync.Once
	closeErr  error
}

func (c *conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if d := c.inj.readDelay(); d > 0 && n > 0 {
		time.Sleep(d)
	}
	return n, err
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.inj.forget(c)
		c.closeErr = c.Conn.Close()
	})
	return c.closeErr
}

// Plan is a seeded fault schedule executed by Run: every Step, one
// action is drawn from the configured probabilities. Probabilities are
// checked in order (sever, partition, delay); at most one action fires
// per step. A partition lasts PartitionFor and is healed by the plan
// itself.
type Plan struct {
	Seed uint64
	// Step is the wall interval between fault decisions (default 100ms).
	Step time.Duration
	// PSever is the per-step probability of severing every connection.
	PSever float64
	// PPartition is the per-step probability of partitioning one random
	// peer address for PartitionFor (default 500ms).
	PPartition   float64
	PartitionFor time.Duration
	// PDelay is the per-step probability of toggling a read delay of
	// DelayBy (default 5ms) for one step.
	PDelay  float64
	DelayBy time.Duration
	// Addrs are the peer addresses eligible for partitioning.
	Addrs []string
}

// Run executes the plan until stop is closed, then heals everything.
// Reproducible: the same seed and step count draw the same actions.
func (i *Injector) Run(p Plan, stop <-chan struct{}) {
	if p.Step <= 0 {
		p.Step = 100 * time.Millisecond
	}
	if p.PartitionFor <= 0 {
		p.PartitionFor = 500 * time.Millisecond
	}
	if p.DelayBy <= 0 {
		p.DelayBy = 5 * time.Millisecond
	}
	rng := ids.NewRNG(p.Seed)
	ticker := time.NewTicker(p.Step)
	defer ticker.Stop()
	defer i.HealAll()
	var healAt time.Time
	var healAddr string
	delayed := false
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		now := time.Now()
		if healAddr != "" && now.After(healAt) {
			i.Unblock(healAddr)
			healAddr = ""
		}
		if delayed {
			i.SetDelay(0)
			delayed = false
		}
		switch {
		case rng.Bool(p.PSever):
			i.SeverAll()
		case p.PPartition > 0 && len(p.Addrs) > 0 && rng.Bool(p.PPartition):
			if healAddr != "" {
				i.Unblock(healAddr) // one partition at a time
			}
			healAddr = p.Addrs[rng.Intn(len(p.Addrs))]
			healAt = now.Add(p.PartitionFor)
			i.Block(healAddr)
		case rng.Bool(p.PDelay):
			i.SetDelay(p.DelayBy)
			delayed = true
		}
	}
}
