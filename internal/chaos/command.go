package chaos

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Handle interprets one operator chaos command against the injector and
// returns a JSON reply. It is the server side of `detmt-chaos`: the
// server exposes it through its control channel ("chaos <cmd>"), so an
// operator can inject faults into a live cluster without restarting it.
//
// Commands:
//
//	sever            close every tracked connection
//	block <addr>     partition the peer at addr (dials fail, conns drop)
//	unblock <addr>   heal the partition toward addr
//	delay <dur>      add <dur> latency to every read (delay 0 disables)
//	heal             clear all partitions and the delay
//	stats            report fault counters
func Handle(i *Injector, cmd string) []byte {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return errJSON("empty chaos command")
	}
	switch fields[0] {
	case "sever":
		n := i.SeverAll()
		return okJSON(map[string]interface{}{"severed": n})
	case "block", "unblock":
		if len(fields) != 2 {
			return errJSON(fmt.Sprintf("usage: %s <addr>", fields[0]))
		}
		if fields[0] == "block" {
			i.Block(fields[1])
		} else {
			i.Unblock(fields[1])
		}
		return okJSON(map[string]interface{}{"addr": fields[1]})
	case "delay":
		if len(fields) != 2 {
			return errJSON("usage: delay <duration>")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d < 0 {
			return errJSON(fmt.Sprintf("bad duration %q", fields[1]))
		}
		i.SetDelay(d)
		return okJSON(map[string]interface{}{"delay_ms": float64(d) / float64(time.Millisecond)})
	case "heal":
		i.HealAll()
		return okJSON(map[string]interface{}{"healed": true})
	case "stats":
		sev, blocked := i.Stats()
		return okJSON(map[string]interface{}{"severed": sev, "dials_blocked": blocked})
	default:
		return errJSON(fmt.Sprintf("unknown chaos command %q", fields[0]))
	}
}

func okJSON(m map[string]interface{}) []byte {
	m["ok"] = true
	b, _ := json.Marshal(m)
	return b
}

func errJSON(msg string) []byte {
	b, _ := json.Marshal(map[string]interface{}{"ok": false, "error": msg})
	return b
}
