package chaos

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func pipeListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()
	return ln
}

func TestBlockRefusesDialsAndSeversLive(t *testing.T) {
	ln := pipeListener(t)
	addr := ln.Addr().String()
	inj := New()
	dial := inj.Dial(nil)

	c, err := dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	inj.Block(addr)
	if _, err := dial(addr); err == nil {
		t.Fatal("dial to blocked address succeeded")
	}
	// The existing connection was severed by Block.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("severed connection still readable")
	}

	inj.Unblock(addr)
	c2, err := dial(addr)
	if err != nil {
		t.Fatalf("dial after unblock: %v", err)
	}
	c2.Close()
	if _, blocked := inj.Stats(); blocked != 1 {
		t.Fatalf("dialsBlocked=%d", blocked)
	}
}

func TestSeverAllClosesTrackedConns(t *testing.T) {
	ln := pipeListener(t)
	inj := New()
	dial := inj.Dial(nil)
	var conns []net.Conn
	for k := 0; k < 3; k++ {
		c, err := dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if n := inj.SeverAll(); n != 3 {
		t.Fatalf("severed %d connections", n)
	}
	for _, c := range conns {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("severed connection still readable")
		}
	}
	if sev, _ := inj.Stats(); sev != 3 {
		t.Fatalf("Stats severed=%d", sev)
	}
	// Closed connections are forgotten: a second sweep finds nothing.
	if n := inj.SeverAll(); n != 0 {
		t.Fatalf("second sweep severed %d", n)
	}
}

func TestReadDelayApplied(t *testing.T) {
	ln := pipeListener(t)
	inj := New()
	dial := inj.Dial(nil)
	c, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inj.SetDelay(50 * time.Millisecond)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := io.ReadFull(c, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("read returned after %v, delay not applied", d)
	}
	inj.HealAll()
	if inj.readDelay() != 0 {
		t.Fatal("HealAll left the delay on")
	}
}

func TestPlanIsSeededAndHealsOnStop(t *testing.T) {
	// Two injectors running the same plan draw the same action sequence;
	// we can't observe the draws directly, but we can check the plan
	// heals on stop and doesn't leak a partition.
	ln := pipeListener(t)
	addr := ln.Addr().String()
	inj := New()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		inj.Run(Plan{
			Seed:         7,
			Step:         5 * time.Millisecond,
			PSever:       0.2,
			PPartition:   0.5,
			PartitionFor: 10 * time.Millisecond,
			PDelay:       0.3,
			DelayBy:      time.Millisecond,
			Addrs:        []string{addr},
		}, stop)
	}()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	<-done
	// Everything healed: dials succeed, no delay.
	c, err := inj.Dial(nil)(addr)
	if err != nil {
		t.Fatalf("dial after plan stop: %v", err)
	}
	c.Close()
	if inj.readDelay() != 0 {
		t.Fatal("plan left a read delay active")
	}
}

func TestHandleCommands(t *testing.T) {
	ln := pipeListener(t)
	addr := ln.Addr().String()
	inj := New()
	dial := inj.Dial(nil)
	if c, err := dial(addr); err != nil {
		t.Fatal(err)
	} else {
		defer c.Close()
	}

	for _, tc := range []struct {
		cmd  string
		want string // substring of the JSON reply
	}{
		{"sever", `"severed":1`},
		{"block " + addr, `"ok":true`},
		{"unblock " + addr, `"ok":true`},
		{"delay 5ms", `"delay_ms":5`},
		{"heal", `"healed":true`},
		{"stats", `"severed":1`},
		{"delay nope", `"ok":false`},
		{"bogus", `"ok":false`},
		{"", `"ok":false`},
	} {
		got := string(Handle(inj, tc.cmd))
		if !strings.Contains(got, tc.want) {
			t.Fatalf("Handle(%q) = %s, want substring %q", tc.cmd, got, tc.want)
		}
	}
	if inj.readDelay() != 0 {
		t.Fatal("heal left the delay on")
	}
}
