package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"detmt/internal/ids"
)

// Faults is the fault switchboard for an external-service backend (the
// detmt-backend stub server). Where Injector faults the *transport*
// between replicas, Faults models the ways a real backend misbehaves as
// seen by the performing replica:
//
//   - error rate: a fraction of calls fail with an application error
//   - delay: every call takes extra wall time (drive the caller past its
//     per-call deadline to inject timeouts)
//   - down: calls are swallowed without a response (a hung service; the
//     caller's deadline converts this into a timeout, and repeated
//     timeouts trip its circuit breaker)
//
// Decisions are drawn from a seeded RNG so a chaos soak is reproducible.
type Faults struct {
	mu      sync.Mutex
	rng     *ids.RNG
	errRate float64
	delay   time.Duration
	down    bool

	// counters (Stats)
	calls    uint64
	injected uint64 // calls answered with an injected error
	dropped  uint64 // calls swallowed while down
	delayed  uint64 // calls that served the injected delay
}

// NewFaults creates an idle fault switchboard (no faults active).
func NewFaults(seed uint64) *Faults {
	return &Faults{rng: ids.NewRNG(seed)}
}

// SetErrorRate makes each call fail with probability p (0 disables).
func (f *Faults) SetErrorRate(p float64) {
	f.mu.Lock()
	f.errRate = p
	f.mu.Unlock()
}

// SetDelay adds d of latency to every call (0 disables).
func (f *Faults) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// SetDown makes the backend swallow calls without answering (a hung
// service) until SetDown(false) or HealAll.
func (f *Faults) SetDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// HealAll clears every fault.
func (f *Faults) HealAll() {
	f.mu.Lock()
	f.errRate = 0
	f.delay = 0
	f.down = false
	f.mu.Unlock()
}

// Decide draws the fate of one call: how long to stall it, whether to
// swallow it entirely, and whether to answer with an injected error.
func (f *Faults) Decide() (delay time.Duration, drop, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	delay = f.delay
	if delay > 0 {
		f.delayed++
	}
	if f.down {
		f.dropped++
		return delay, true, false
	}
	if f.errRate > 0 && f.rng.Bool(f.errRate) {
		f.injected++
		return delay, false, true
	}
	return delay, false, false
}

// Stats reports the fault counters and current knob settings.
func (f *Faults) Stats() map[string]interface{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return map[string]interface{}{
		"calls":      f.calls,
		"injected":   f.injected,
		"dropped":    f.dropped,
		"delayed":    f.delayed,
		"error_rate": f.errRate,
		"delay_ms":   float64(f.delay) / float64(time.Millisecond),
		"down":       f.down,
	}
}

// HandleFaults interprets one operator chaos command against a backend
// fault switchboard and returns a JSON reply — the backend-side
// counterpart of Handle, exposed by detmt-backend's control channel and
// driven by `detmt-chaos -target backend`.
//
// Commands:
//
//	error-rate <p>   fail each call with probability p (error-rate 0 disables)
//	delay <dur>      stall every call by <dur> (delay 0 disables)
//	down             swallow calls without answering (callers time out)
//	up               resume answering calls
//	heal             clear all faults
//	stats            report fault counters and knob settings
func HandleFaults(f *Faults, cmd string) []byte {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return errJSON("empty chaos command")
	}
	switch fields[0] {
	case "error-rate":
		if len(fields) != 2 {
			return errJSON("usage: error-rate <probability>")
		}
		p, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || p < 0 || p > 1 {
			return errJSON(fmt.Sprintf("bad probability %q", fields[1]))
		}
		f.SetErrorRate(p)
		return okJSON(map[string]interface{}{"error_rate": p})
	case "delay":
		if len(fields) != 2 {
			return errJSON("usage: delay <duration>")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil || d < 0 {
			return errJSON(fmt.Sprintf("bad duration %q", fields[1]))
		}
		f.SetDelay(d)
		return okJSON(map[string]interface{}{"delay_ms": float64(d) / float64(time.Millisecond)})
	case "down":
		f.SetDown(true)
		return okJSON(map[string]interface{}{"down": true})
	case "up":
		f.SetDown(false)
		return okJSON(map[string]interface{}{"down": false})
	case "heal":
		f.HealAll()
		return okJSON(map[string]interface{}{"healed": true})
	case "stats":
		return okJSON(f.Stats())
	default:
		return errJSON(fmt.Sprintf("unknown backend chaos command %q", fields[0]))
	}
}
