package gcs

import (
	"sync"
	"time"

	"detmt/internal/vclock"
)

// Transport moves envelopes between group endpoints. Two implementations
// exist: the in-memory virtual-latency transport built into this package
// (the simulator) and the TCP transport in internal/wire (real
// deployments). A transport must preserve per-link FIFO order: envelopes
// sent with the same key arrive in send order.
type Transport interface {
	// Bind registers the endpoint addressed by at. deliver is invoked
	// for every envelope — or contiguous batch of envelopes — addressed
	// to it; it must be safe to call from any goroutine.
	Bind(at Origin, deliver func(envs ...Envelope))
	// Send places env on the FIFO link named key toward to. Envelopes
	// sent with the same key never overtake each other.
	Send(key string, to Origin, env Envelope)
	// Close releases the transport's resources.
	Close() error
}

// BatchSender is an optional Transport extension: SendBatch places envs
// on a link as one atomic unit, handed to the receiver's deliver
// callback in a single call. Distributed-mode determinism tests rely on
// this to keep a burst of forwards within one sequencing tick.
type BatchSender interface {
	SendBatch(key string, to Origin, envs []Envelope)
}

// Compile-time assertions: the in-memory transport implements the
// interface (internal/wire carries the matching assertion for TCP).
var (
	_ Transport   = (*memTransport)(nil)
	_ BatchSender = (*memTransport)(nil)
)

// memTransport models point-to-point links with a fixed one-way latency
// and FIFO ordering: messages sent on the same link never overtake each
// other, even when their virtual send instants coincide. Each link
// drains through its own managed goroutine, so per-link order equals
// send order by construction (the sender enqueues synchronously inside
// Send).
type memTransport struct {
	g *Group

	mu    sync.Mutex
	binds map[Origin]func(...Envelope)
	links map[string]*link
}

func newMemTransport(g *Group) *memTransport {
	return &memTransport{
		g:     g,
		binds: map[Origin]func(...Envelope){},
		links: map[string]*link{},
	}
}

func (t *memTransport) Bind(at Origin, deliver func(...Envelope)) {
	t.mu.Lock()
	t.binds[at] = deliver
	t.mu.Unlock()
}

func (t *memTransport) Send(key string, to Origin, env Envelope) {
	t.SendBatch(key, to, []Envelope{env})
}

func (t *memTransport) SendBatch(key string, to Origin, envs []Envelope) {
	lk := t.linkTo(key, to)
	lk.mu.Lock()
	now := t.g.cfg.Clock.Now()
	for _, e := range envs {
		lk.queue = append(lk.queue, timedEnv{sentAt: now, env: e})
	}
	start := !lk.running
	lk.running = true
	lk.mu.Unlock()
	if start {
		t.g.cfg.Clock.Go(lk.drain)
	}
}

func (t *memTransport) Close() error { return nil }

type timedEnv struct {
	sentAt time.Duration
	env    Envelope
}

type link struct {
	t   *memTransport
	key string
	to  Origin
	// order ranks this link's delivery timer among same-instant timers:
	// derived from the link key, so simultaneous arrivals on different
	// links are always processed in the same (arbitrary but fixed)
	// order — a requirement for rerun-identical simulations.
	order uint64

	mu      sync.Mutex
	queue   []timedEnv
	running bool
}

// linkOrderBase places link timers between thread timers (small ids) and
// the per-node delivery/pump parkers (top of the range).
const linkOrderBase = uint64(1) << 62

func fnv32(s string) uint64 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return uint64(h)
}

// linkTo returns (creating on demand) the FIFO link identified by key.
func (t *memTransport) linkTo(key string, to Origin) *link {
	t.mu.Lock()
	defer t.mu.Unlock()
	lk := t.links[key]
	if lk == nil {
		lk = &link{t: t, key: key, to: to, order: linkOrderBase + fnv32(key)}
		t.links[key] = lk
	}
	return lk
}

func (lk *link) drain() {
	t := lk.t
	for {
		lk.mu.Lock()
		if len(lk.queue) == 0 {
			lk.running = false
			lk.mu.Unlock()
			return
		}
		te := lk.queue[0]
		lk.queue = lk.queue[1:]
		lk.mu.Unlock()
		arrival := te.sentAt + t.g.cfg.Latency
		if d := arrival - t.g.cfg.Clock.Now(); d > 0 {
			vclock.SleepOrdered(t.g.cfg.Clock, d, "link "+lk.key, lk.order)
		}
		t.mu.Lock()
		deliver := t.binds[lk.to]
		t.mu.Unlock()
		if deliver != nil {
			deliver(te.env)
		}
	}
}
