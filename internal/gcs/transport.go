package gcs

import (
	"sync"
	"time"

	"detmt/internal/vclock"
)

// The transport models point-to-point links with a fixed one-way latency
// and FIFO ordering: messages sent on the same link never overtake each
// other, even when their virtual send instants coincide. Each link drains
// through its own managed goroutine, so per-link order equals send order
// by construction (the sender enqueues synchronously inside transfer).

type timedEnv struct {
	sentAt time.Duration
	env    envelope
}

type link struct {
	g       *Group
	key     string
	deliver func(envelope)
	// order ranks this link's delivery timer among same-instant timers:
	// derived from the link key, so simultaneous arrivals on different
	// links are always processed in the same (arbitrary but fixed)
	// order — a requirement for rerun-identical simulations.
	order uint64

	mu      sync.Mutex
	queue   []timedEnv
	running bool
}

// linkOrderBase places link timers between thread timers (small ids) and
// the per-node delivery/pump parkers (top of the range).
const linkOrderBase = uint64(1) << 62

func fnv32(s string) uint64 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return uint64(h)
}

// linkTo returns (creating on demand) the FIFO link identified by key.
func (g *Group) linkTo(key string, deliver func(envelope)) *link {
	g.linksMu.Lock()
	defer g.linksMu.Unlock()
	if g.links == nil {
		g.links = map[string]*link{}
	}
	lk := g.links[key]
	if lk == nil {
		lk = &link{g: g, key: key, deliver: deliver, order: linkOrderBase + fnv32(key)}
		g.links[key] = lk
	}
	return lk
}

// transfer puts env on the named link. deliver runs after the configured
// latency, in send order per link.
func (g *Group) transfer(key string, deliver func(envelope), env envelope) {
	g.stats.add(1, 0, 0)
	lk := g.linkTo(key, deliver)
	lk.mu.Lock()
	lk.queue = append(lk.queue, timedEnv{sentAt: g.cfg.Clock.Now(), env: env})
	start := !lk.running
	lk.running = true
	lk.mu.Unlock()
	if start {
		g.cfg.Clock.Go(lk.drain)
	}
}

func (lk *link) drain() {
	for {
		lk.mu.Lock()
		if len(lk.queue) == 0 {
			lk.running = false
			lk.mu.Unlock()
			return
		}
		te := lk.queue[0]
		lk.queue = lk.queue[1:]
		lk.mu.Unlock()
		arrival := te.sentAt + lk.g.cfg.Latency
		if d := arrival - lk.g.cfg.Clock.Now(); d > 0 {
			vclock.SleepOrdered(lk.g.cfg.Clock, d, "link "+lk.key, lk.order)
		}
		lk.deliver(te.env)
	}
}
