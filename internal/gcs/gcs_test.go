package gcs

import (
	"sync"
	"testing"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

const lat = 2 * time.Millisecond

// testGroup builds a 3-member group on a fresh virtual clock and collects
// per-node deliveries.
type testGroup struct {
	v   *vclock.Virtual
	g   *Group
	mu  sync.Mutex
	log map[ids.ReplicaID][]Message
}

func newTestGroup(t *testing.T, members ...ids.ReplicaID) *testGroup {
	t.Helper()
	if len(members) == 0 {
		members = []ids.ReplicaID{1, 2, 3}
	}
	tg := &testGroup{v: vclock.NewVirtual(), log: map[ids.ReplicaID][]Message{}}
	tg.g = NewGroup(Config{
		Clock:         tg.v,
		Members:       members,
		Latency:       lat,
		DetectTimeout: 20 * time.Millisecond,
	})
	for _, id := range members {
		id := id
		tg.g.Node(id).SetDeliver(func(m Message) {
			tg.mu.Lock()
			tg.log[id] = append(tg.log[id], m)
			tg.mu.Unlock()
		})
	}
	return tg
}

// drive runs fn as a managed goroutine and then lets the simulation run
// until quiescent (a final long sleep flushes in-flight messages).
func (tg *testGroup) drive(t *testing.T, fn func()) {
	t.Helper()
	done := make(chan struct{})
	tg.v.Go(func() {
		defer close(done)
		fn()
		tg.v.Sleep(time.Second) // flush all in-flight traffic
	})
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("gcs test timed out")
	}
}

func (tg *testGroup) deliveries(id ids.ReplicaID) []Message {
	tg.mu.Lock()
	defer tg.mu.Unlock()
	return append([]Message(nil), tg.log[id]...)
}

func TestBroadcastReachesAllInTotalOrder(t *testing.T) {
	tg := newTestGroup(t)
	tg.drive(t, func() {
		tg.g.Node(2).Broadcast("a")
		tg.v.Sleep(time.Millisecond)
		tg.g.Node(3).Broadcast("b")
		tg.v.Sleep(time.Millisecond)
		tg.g.Node(1).Broadcast("c")
	})
	want := tg.deliveries(1)
	if len(want) != 3 {
		t.Fatalf("node 1 delivered %d messages", len(want))
	}
	for seq, m := range want {
		if m.Seq != uint64(seq+1) {
			t.Fatalf("sequence gap: %+v", want)
		}
	}
	for _, id := range []ids.ReplicaID{2, 3} {
		got := tg.deliveries(id)
		if len(got) != 3 {
			t.Fatalf("node %v delivered %d messages", id, len(got))
		}
		for i := range got {
			if got[i].Seq != want[i].Seq || got[i].Payload != want[i].Payload {
				t.Fatalf("node %v order differs: %+v vs %+v", id, got, want)
			}
		}
	}
}

func TestConcurrentBroadcastsSameOrderEverywhere(t *testing.T) {
	tg := newTestGroup(t)
	tg.drive(t, func() {
		// All three broadcast at the same instant: any assignment is
		// legal, but all members must agree.
		for _, id := range tg.g.Members() {
			tg.g.Node(id).Broadcast(int(id) * 10)
		}
	})
	ref := tg.deliveries(1)
	if len(ref) != 3 {
		t.Fatalf("delivered %d", len(ref))
	}
	for _, id := range []ids.ReplicaID{2, 3} {
		got := tg.deliveries(id)
		for i := range ref {
			if got[i].Payload != ref[i].Payload {
				t.Fatalf("disagreement at %d: %v vs %v", i, got[i], ref[i])
			}
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	tg := newTestGroup(t)
	var deliveredAt time.Duration
	tg.g.Node(3).SetDeliver(func(m Message) { deliveredAt = tg.v.Now() })
	tg.drive(t, func() {
		tg.g.Node(3).Broadcast("x")
	})
	// node3 -> sequencer (1): lat; sequencer -> node3: lat.
	if deliveredAt != 2*lat {
		t.Fatalf("delivered at %v, want %v", deliveredAt, 2*lat)
	}
}

func TestClientBroadcastAndDedup(t *testing.T) {
	tg := newTestGroup(t)
	c := tg.g.NewClientEndpoint(7)
	tg.drive(t, func() {
		c.Broadcast("req")
		// Simulate a client retransmission of the same uid.
		c.retransmitPending()
	})
	for _, id := range tg.g.Members() {
		got := tg.deliveries(id)
		if len(got) != 1 {
			t.Fatalf("node %v delivered %d copies, want 1 (dedup)", id, len(got))
		}
		if !got[0].Origin.IsClient || got[0].Origin.Client != 7 {
			t.Fatalf("origin %+v", got[0].Origin)
		}
	}
}

func TestDirectMessagesFIFO(t *testing.T) {
	tg := newTestGroup(t)
	var got []int
	tg.g.Node(2).SetDirect(func(from Origin, p Payload) {
		got = append(got, p.(int))
	})
	tg.drive(t, func() {
		// Same-instant sends on one link must not be reordered.
		for i := 0; i < 10; i++ {
			tg.g.Node(1).SendDirect(2, i)
		}
	})
	if len(got) != 10 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestSendToClient(t *testing.T) {
	tg := newTestGroup(t)
	c := tg.g.NewClientEndpoint(9)
	var from ids.ReplicaID
	var payload Payload
	c.SetOnReply(func(f ids.ReplicaID, p Payload) { from, payload = f, p })
	tg.drive(t, func() {
		tg.g.Node(2).SendToClient(9, "reply")
	})
	if from != 2 || payload != "reply" {
		t.Fatalf("reply from %v: %v", from, payload)
	}
}

func TestCrashStopsTraffic(t *testing.T) {
	tg := newTestGroup(t)
	tg.drive(t, func() {
		tg.g.Node(2).Broadcast("before")
		tg.v.Sleep(10 * time.Millisecond)
		if !tg.g.Crash(3) {
			t.Error("crash failed")
		}
		if tg.g.Crash(3) {
			t.Error("double crash succeeded")
		}
		tg.g.Node(2).Broadcast("after")
	})
	if n := len(tg.deliveries(3)); n != 1 {
		t.Fatalf("crashed node delivered %d messages, want 1", n)
	}
	if n := len(tg.deliveries(1)); n != 2 {
		t.Fatalf("live node delivered %d messages, want 2", n)
	}
}

func TestSequencerTakeover(t *testing.T) {
	tg := newTestGroup(t)
	var sawAt time.Duration
	tg.g.Node(2).SetDeliver(func(m Message) {
		tg.mu.Lock()
		tg.log[2] = append(tg.log[2], m)
		tg.mu.Unlock()
		if m.Payload == "during" {
			sawAt = tg.v.Now()
		}
	})
	var crashAt time.Duration
	tg.drive(t, func() {
		tg.g.Node(2).Broadcast("pre")
		tg.v.Sleep(10 * time.Millisecond)
		crashAt = tg.v.Now()
		tg.g.Crash(1) // the sequencer dies
		// A broadcast right after the crash: the forward is lost; the
		// retransmission after DetectTimeout reaches node 2, the new
		// sequencer.
		tg.g.Node(3).Broadcast("during")
	})
	got := tg.deliveries(2)
	if len(got) != 2 {
		t.Fatalf("survivor delivered %d messages: %+v", len(got), got)
	}
	if got[1].Payload != "during" {
		t.Fatalf("missing takeover delivery: %+v", got)
	}
	if got[1].Seq <= got[0].Seq {
		t.Fatalf("sequence did not continue after takeover: %+v", got)
	}
	// Takeover delay is at least the detection timeout.
	if sawAt < crashAt+20*time.Millisecond {
		t.Fatalf("takeover delivery at %v, crash at %v: too early", sawAt, crashAt)
	}
	// Both survivors agree.
	got3 := tg.deliveries(3)
	if len(got3) != 2 || got3[1].Payload != got[1].Payload {
		t.Fatalf("survivors disagree: %+v vs %+v", got, got3)
	}
}

func TestClientRetransmissionAfterTakeover(t *testing.T) {
	tg := newTestGroup(t)
	c := tg.g.NewClientEndpoint(5)
	tg.drive(t, func() {
		tg.g.Crash(1) // sequencer gone before the request
		c.Broadcast("lost-then-retried")
	})
	got := tg.deliveries(2)
	if len(got) != 1 || got[0].Payload != "lost-then-retried" {
		t.Fatalf("client request not recovered: %+v", got)
	}
}

// TestBroadcastAllCrashedErrNoSequencer pins the whole-group-down
// contract: once every member is crash-detected there is no sequencer to
// route to, and both node and client submission paths must fail fast
// with ErrNoSequencer instead of silently dropping (or misrouting) the
// request.
func TestBroadcastAllCrashedErrNoSequencer(t *testing.T) {
	tg := newTestGroup(t)
	c := tg.g.NewClientEndpoint(5)
	tg.drive(t, func() {
		tg.g.Crash(1)
		tg.g.Crash(2)
		tg.g.Crash(3)
		// Senders keep routing to a dead member until failure detection
		// lands (in-flight requests are realistically lost); only after
		// DetectTimeout is the whole-group outage visible to them.
		tg.v.Sleep(30 * time.Millisecond)
		if _, err := c.Broadcast("into the void"); err != ErrNoSequencer {
			t.Errorf("client Broadcast with all members crashed: err=%v, want ErrNoSequencer", err)
		}
		if _, err := c.BroadcastBatch([]Payload{"a", "b"}); err != ErrNoSequencer {
			t.Errorf("client BroadcastBatch with all members crashed: err=%v, want ErrNoSequencer", err)
		}
		if err := tg.g.Node(2).Broadcast("also lost"); err != ErrNoSequencer {
			t.Errorf("node Broadcast with all members crashed: err=%v, want ErrNoSequencer", err)
		}
	})
	for _, id := range []ids.ReplicaID{1, 2, 3} {
		if n := len(tg.deliveries(id)); n != 0 {
			t.Fatalf("node %v delivered %d messages after whole-group crash", id, n)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	tg := newTestGroup(t)
	tg.drive(t, func() {
		tg.g.Node(1).Broadcast("x")
		tg.g.Node(1).SendDirect(2, "y")
	})
	transfers, broadcasts, directs := tg.g.Stats().Snapshot()
	if broadcasts != 1 || directs != 1 {
		t.Fatalf("broadcasts=%d directs=%d", broadcasts, directs)
	}
	// broadcast: 1 forward + 3 sequenced; direct: 1 transfer.
	if transfers != 5 {
		t.Fatalf("transfers=%d, want 5", transfers)
	}
}

func TestMembersSortedAndLookup(t *testing.T) {
	tg := newTestGroup(t, 3, 1, 2)
	m := tg.g.Members()
	if m[0] != 1 || m[1] != 2 || m[2] != 3 {
		t.Fatalf("members %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown member lookup should panic")
		}
	}()
	tg.g.Node(99)
}
