package gcs

import (
	"sync"
	"testing"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// These tests drive node internals directly (synthetic envelopes) to
// exercise paths the uniform-latency transport cannot produce naturally:
// out-of-order sequenced deliveries, duplicate slots, and stale forwards.

func newBareNode(t *testing.T) (*Node, *[]Message, *vclock.Virtual) {
	t.Helper()
	v := vclock.NewVirtual()
	g := NewGroup(Config{Clock: v, Members: []ids.ReplicaID{1, 2}, Latency: time.Millisecond})
	n := g.Node(2)
	var mu sync.Mutex
	delivered := &[]Message{}
	n.SetDeliver(func(m Message) {
		mu.Lock()
		*delivered = append(*delivered, m)
		mu.Unlock()
	})
	return n, delivered, v
}

func seqEnv(seq uint64, origin ids.ReplicaID, uid uint64, payload Payload) Envelope {
	return Envelope{
		Kind:    EnvSequenced,
		Seq:     seq,
		Origin:  Origin{Replica: origin},
		UID:     uid,
		Payload: payload,
	}
}

func TestHoldbackReordersGaps(t *testing.T) {
	n, delivered, _ := newBareNode(t)
	// Deliver 3, 1, 2: the hold-back queue must emit 1, 2, 3.
	n.handleSequenced(seqEnv(3, 1, 3, "c"))
	if len(*delivered) != 0 {
		t.Fatalf("delivered before the gap filled: %v", *delivered)
	}
	n.handleSequenced(seqEnv(1, 1, 1, "a"))
	n.handleSequenced(seqEnv(2, 1, 2, "b"))
	got := *delivered
	if len(got) != 3 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i].Payload != want || got[i].Seq != uint64(i+1) {
			t.Fatalf("delivery %d: %+v", i, got[i])
		}
	}
}

func TestDuplicateSequencedSlotIgnored(t *testing.T) {
	n, delivered, _ := newBareNode(t)
	n.handleSequenced(seqEnv(1, 1, 1, "a"))
	n.handleSequenced(seqEnv(1, 1, 1, "a")) // duplicate of a delivered slot
	if len(*delivered) != 1 {
		t.Fatalf("duplicate slot delivered: %v", *delivered)
	}
}

func TestSequencerDedupsReForwardedBroadcast(t *testing.T) {
	// The sequencer must not assign a second slot to a forward whose
	// original it already sequenced (retransmission after takeover).
	v := vclock.NewVirtual()
	g := NewGroup(Config{Clock: v, Members: []ids.ReplicaID{1, 2}, Latency: time.Millisecond})
	seqNode := g.Node(1)
	var mu sync.Mutex
	var got []Message
	seqNode.SetDeliver(func(m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	})
	fwd := Envelope{Kind: EnvForward, Origin: Origin{Replica: 2}, UID: 7, Payload: "x"}
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		seqNode.handleForward(fwd)
		seqNode.handleForward(fwd) // duplicate forward
		v.Sleep(time.Second)
	})
	<-done
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("sequencer assigned %d slots for one broadcast", len(got))
	}
}

func TestCrashedNodeDropsEnqueues(t *testing.T) {
	n, delivered, v := newBareNode(t)
	n.g.Crash(2)
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		n.enqueue(seqEnv(1, 1, 1, "a"))
		v.Sleep(10 * time.Millisecond)
	})
	<-done
	if len(*delivered) != 0 {
		t.Fatal("crashed node delivered a message")
	}
}

func TestOriginKeyDistinguishesClientsAndReplicas(t *testing.T) {
	r := origKey(Origin{Replica: 3}, 7)
	c := origKey(Origin{Client: 3, IsClient: true}, 7)
	if r == c {
		t.Fatalf("replica and client keys collide: %v", r)
	}
}

func TestSortUint64(t *testing.T) {
	s := []uint64{5, 1, 4, 1, 3}
	sortUint64(s)
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("not sorted: %v", s)
		}
	}
}

func TestFnv32Stable(t *testing.T) {
	if fnv32("a>b") != fnv32("a>b") {
		t.Fatal("hash not stable")
	}
	if fnv32("a>b") == fnv32("b>a") {
		t.Fatal("suspicious collision on reversed key")
	}
}

func TestSendDirectToCrashedTargetDropped(t *testing.T) {
	v := vclock.NewVirtual()
	g := NewGroup(Config{Clock: v, Members: []ids.ReplicaID{1, 2}, Latency: time.Millisecond})
	delivered := 0
	g.Node(2).SetDirect(func(Origin, Payload) { delivered++ })
	g.Crash(2)
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		g.Node(1).SendDirect(2, "x")
		v.Sleep(10 * time.Millisecond)
	})
	<-done
	if delivered != 0 {
		t.Fatal("message delivered to a crashed node")
	}
	if !g.Alive(1) || g.Alive(2) {
		t.Fatal("Alive view wrong")
	}
	live := g.LiveMembers()
	if len(live) != 1 || live[0] != 1 {
		t.Fatalf("live members %v", live)
	}
}
