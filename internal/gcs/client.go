package gcs

import (
	"fmt"
	"sync"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// ClientEndpoint lets a client submit requests into the group's total
// order and receive direct replies from replicas. Replication logic on
// top implements the "first reply wins" semantics.
type ClientEndpoint struct {
	g  *Group
	id ids.ClientID

	mu      sync.Mutex
	inbox   []Envelope
	running bool
	parker  vclock.Parker

	onReply func(from ids.ReplicaID, p Payload)

	nextUID uint64
	pending map[uint64]Payload
}

func newClientEndpoint(g *Group, id ids.ClientID) *ClientEndpoint {
	c := &ClientEndpoint{g: g, id: id, pending: map[uint64]Payload{}}
	if v, ok := g.cfg.Clock.(*vclock.Virtual); ok {
		c.parker = v.NewOrderedParker(fmt.Sprintf("gcs client %v", id), ^uint64(0)-4096+uint64(uint16(id)))
	} else {
		c.parker = g.cfg.Clock.NewParker()
	}
	return c
}

// ID returns the client id.
func (c *ClientEndpoint) ID() ids.ClientID { return c.id }

// SetOnReply installs the reply handler.
func (c *ClientEndpoint) SetOnReply(fn func(from ids.ReplicaID, p Payload)) { c.onReply = fn }

// Broadcast submits a request payload into the total order and returns
// the uid assigned to it. The client's per-endpoint uid provides the
// duplicate suppression the paper requires ("a unique message identifier
// for each client request"); pass it to Ack once the request completed.
// When every member is crash-detected the send fails with
// ErrNoSequencer: the request will never be ordered, so the caller must
// not wait for a reply.
func (c *ClientEndpoint) Broadcast(p Payload) (uint64, error) {
	c.g.stats.add(0, 1, 0)
	c.mu.Lock()
	c.nextUID++
	uid := c.nextUID
	c.pending[uid] = p
	c.mu.Unlock()
	err := c.send(Envelope{
		Kind:    EnvForward,
		Origin:  Origin{Client: c.id, IsClient: true},
		UID:     uid,
		Payload: p,
	})
	return uid, err
}

func (c *ClientEndpoint) send(env Envelope) error {
	seq := c.g.sequencer()
	if seq < 0 {
		return ErrNoSequencer
	}
	c.g.transfer(fmt.Sprintf("%v>%v", env.Origin, seq), Origin{Replica: seq}, env)
	return nil
}

// BroadcastBatch submits several payloads as one atomic wire batch: on a
// batching transport the sequencer observes them contiguously, within a
// single sequencing tick, which distributed-mode determinism tests rely
// on. It returns the uids assigned to the payloads, in order.
func (c *ClientEndpoint) BroadcastBatch(ps []Payload) ([]uint64, error) {
	if len(ps) == 0 {
		return nil, nil
	}
	c.g.stats.add(0, len(ps), 0)
	uids := make([]uint64, len(ps))
	envs := make([]Envelope, len(ps))
	origin := Origin{Client: c.id, IsClient: true}
	c.mu.Lock()
	for i, p := range ps {
		c.nextUID++
		uids[i] = c.nextUID
		c.pending[c.nextUID] = p
		envs[i] = Envelope{Kind: EnvForward, Origin: origin, UID: c.nextUID, Payload: p}
	}
	c.mu.Unlock()
	seq := c.g.sequencer()
	if seq < 0 {
		return uids, ErrNoSequencer
	}
	c.g.transferBatch(fmt.Sprintf("%v>%v", origin, seq), Origin{Replica: seq}, envs)
	return uids, nil
}

// Ack tells the endpoint that the request with the given uid completed,
// so takeover retransmissions stop re-sending it.
func (c *ClientEndpoint) Ack(uid uint64) {
	c.mu.Lock()
	delete(c.pending, uid)
	c.mu.Unlock()
}

// SetUIDBase starts the endpoint's uid counter at base. The sequencer
// suppresses duplicates by (client, uid) for the lifetime of the
// cluster, so a client process restarting (or a second load-generator
// incarnation reusing the same client ids) must begin above every uid
// its predecessor used or its requests are swallowed as duplicates.
// Call before the first Broadcast.
func (c *ClientEndpoint) SetUIDBase(base uint64) {
	c.mu.Lock()
	if base > c.nextUID {
		c.nextUID = base
	}
	c.mu.Unlock()
}

// LastUID returns the uid assigned to the most recent Broadcast.
func (c *ClientEndpoint) LastUID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextUID
}

// retransmitPending re-sends unacknowledged requests after a sequencer
// takeover.
func (c *ClientEndpoint) retransmitPending() {
	c.mu.Lock()
	uids := make([]uint64, 0, len(c.pending))
	for uid := range c.pending {
		uids = append(uids, uid)
	}
	payloads := make(map[uint64]Payload, len(uids))
	for _, uid := range uids {
		payloads[uid] = c.pending[uid]
	}
	c.mu.Unlock()
	sortUint64(uids)
	for _, uid := range uids {
		// A failed send keeps the uid pending for the next view change.
		_ = c.send(Envelope{
			Kind:    EnvForward,
			Origin:  Origin{Client: c.id, IsClient: true},
			UID:     uid,
			Payload: payloads[uid],
		})
	}
}

// enqueue accepts a reply envelope from the transport.
func (c *ClientEndpoint) enqueue(env Envelope) {
	c.mu.Lock()
	c.inbox = append(c.inbox, env)
	start := !c.running
	c.running = true
	c.mu.Unlock()
	if start {
		c.g.cfg.Clock.Go(c.loop)
	} else {
		c.parker.Unpark()
	}
}

func (c *ClientEndpoint) loop() {
	quiesced := false
	for {
		c.mu.Lock()
		if len(c.inbox) == 0 {
			c.running = false
			c.mu.Unlock()
			return
		}
		if !quiesced {
			c.mu.Unlock()
			woken := c.parker.ParkTimeout(0)
			quiesced = !woken
			continue
		}
		env := c.inbox[0]
		c.inbox = c.inbox[1:]
		c.mu.Unlock()
		quiesced = false
		if c.onReply != nil {
			c.onReply(env.From.Replica, env.Payload)
		}
	}
}
