package gcs

import (
	"fmt"
	"sync"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// Node is one group member's endpoint: it can broadcast in total order,
// send direct messages, and hands incoming messages to the replication
// layer one at a time through its delivery loop.
type Node struct {
	g  *Group
	id ids.ReplicaID

	mu      sync.Mutex
	inbox   []Envelope
	running bool
	parker  vclock.Parker

	deliver func(Message)                // total-order deliveries
	direct  func(from Origin, p Payload) // point-to-point deliveries

	// sender state
	nextUID uint64
	pending map[uint64]Payload // broadcasts not yet seen sequenced

	// sequencer state
	nextAssign uint64
	assigned   map[origUID]bool // origin/uid already sequenced by me

	// receiver state
	nextDeliver   uint64
	holdback      map[uint64]Envelope
	sequencedSeen map[origUID]bool // origin/uid seen in any sequenced msg
	highestSeen   uint64

	// sequenced-log retention: the tail of delivered slots kept around so
	// a restarted peer can catch up from a checkpoint without replaying
	// the whole history. seqLog[i] holds slot seqLogStart+i.
	seqLog      []Envelope
	seqLogStart uint64
	halted      bool
}

func newNode(g *Group, id ids.ReplicaID) *Node {
	n := &Node{
		g:             g,
		id:            id,
		pending:       map[uint64]Payload{},
		assigned:      map[origUID]bool{},
		holdback:      map[uint64]Envelope{},
		sequencedSeen: map[origUID]bool{},
		nextDeliver:   1,
	}
	if v, ok := g.cfg.Clock.(*vclock.Virtual); ok {
		// Deliveries rank just below the core runtime's event pump, and
		// per-node ranks keep simultaneous deliveries on different
		// replicas in a fixed (if arbitrary) global order.
		n.parker = v.NewOrderedParker(fmt.Sprintf("gcs %v", id), ^uint64(0)-1024+uint64(uint16(id)))
	} else {
		n.parker = g.cfg.Clock.NewParker()
	}
	return n
}

// ID returns the member id.
func (n *Node) ID() ids.ReplicaID { return n.id }

// SetDeliver installs the total-order delivery handler. Must be set
// before any traffic flows.
func (n *Node) SetDeliver(fn func(Message)) { n.deliver = fn }

// SetDirect installs the point-to-point handler.
func (n *Node) SetDirect(fn func(from Origin, p Payload)) { n.direct = fn }

// origUID is the duplicate-suppression key for a broadcast: its origin
// plus the per-origin uid. A comparable struct rather than a formatted
// string — dedup lookups run once per request on the sequencing hot
// path, and the fmt.Sprintf key was its dominant allocation.
type origUID struct {
	o   Origin
	uid uint64
}

func origKey(o Origin, uid uint64) origUID {
	return origUID{o: o, uid: uid}
}

// Broadcast submits p for total ordering. Delivery happens on every live
// member (including this one) once the sequencer has assigned a slot.
// It fails with ErrNoSequencer when every member is crash-detected —
// callers must not assume delivery will ever happen then.
func (n *Node) Broadcast(p Payload) error {
	if !n.g.alive(n.id) {
		return ErrNoSequencer
	}
	n.g.stats.add(0, 1, 0)
	n.mu.Lock()
	n.nextUID++
	uid := n.nextUID
	n.pending[uid] = p
	n.mu.Unlock()
	env := Envelope{
		Kind:    EnvForward,
		Origin:  Origin{Replica: n.id},
		UID:     uid,
		Payload: p,
	}
	return n.sendToSequencer(env)
}

func (n *Node) sendToSequencer(env Envelope) error {
	seq := n.g.sequencer()
	if seq < 0 {
		return ErrNoSequencer // nobody left alive: do not misroute
	}
	key := fmt.Sprintf("%v>%v", env.Origin, seq)
	if !env.Origin.IsClient && env.Origin.Replica != n.id {
		// re-forward path (received a forward while not sequencer)
		key = fmt.Sprintf("fwd%v>%v", n.id, seq)
	}
	n.g.transfer(key, Origin{Replica: seq}, env)
	return nil
}

// SendDirect sends p to another member outside the total order (FIFO per
// sender-receiver pair). The LSA decision stream uses this.
func (n *Node) SendDirect(to ids.ReplicaID, p Payload) {
	if !n.g.alive(n.id) || !n.g.alive(to) {
		return
	}
	n.g.stats.add(0, 0, 1)
	env := Envelope{Kind: EnvDirect, From: Origin{Replica: n.id}, Payload: p}
	n.g.transfer(fmt.Sprintf("dir%v>%v", n.id, to), Origin{Replica: to}, env)
}

// SendToClient sends p to a client endpoint (replies).
func (n *Node) SendToClient(to ids.ClientID, p Payload) {
	if !n.g.alive(n.id) {
		return
	}
	if n.g.cfg.Transport == nil {
		// Simulator semantics (in-memory transport): replies to
		// unregistered clients vanish — there is nowhere to route them.
		// A real transport must NOT take this path even when one process
		// hosts every member (a single-member group, a multi-tenant
		// shard): its clients live behind the wire, not in g.clients.
		n.g.mu.Lock()
		c := n.g.clients[to]
		n.g.mu.Unlock()
		if c == nil {
			return
		}
	}
	n.g.stats.add(0, 0, 1)
	env := Envelope{Kind: EnvDirect, From: Origin{Replica: n.id}, Payload: p}
	n.g.transfer(fmt.Sprintf("rep%v>%v", n.id, to), Origin{Client: to, IsClient: true}, env)
}

// retransmitPending re-sends unsequenced broadcasts to the (new)
// sequencer after a takeover.
func (n *Node) retransmitPending() {
	if !n.g.alive(n.id) {
		return
	}
	n.mu.Lock()
	uids := make([]uint64, 0, len(n.pending))
	for uid := range n.pending {
		uids = append(uids, uid)
	}
	payloads := make(map[uint64]Payload, len(uids))
	for _, uid := range uids {
		payloads[uid] = n.pending[uid]
	}
	n.mu.Unlock()
	sortUint64(uids)
	for _, uid := range uids {
		// A failed send (no live sequencer) keeps the uid pending; the
		// next view change retries it.
		_ = n.sendToSequencer(Envelope{
			Kind:    EnvForward,
			Origin:  Origin{Replica: n.id},
			UID:     uid,
			Payload: payloads[uid],
		})
	}
}

// raiseHighestSeen lifts the slot watermark that the next sequencing
// assignment resumes above — the takeover view-sync feeds it the highest
// slot any survivor has seen, so the new sequencer cannot reuse a slot
// number the old one already published.
func (n *Node) raiseHighestSeen(v uint64) {
	n.mu.Lock()
	if v > n.highestSeen {
		n.highestSeen = v
	}
	n.mu.Unlock()
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// enqueue accepts an envelope from the transport and kicks the delivery
// loop (same start/park discipline as core's event pump).
func (n *Node) enqueue(env Envelope) {
	if !n.g.alive(n.id) {
		return
	}
	n.mu.Lock()
	if n.halted {
		n.mu.Unlock()
		return
	}
	n.inbox = append(n.inbox, env)
	start := !n.running
	n.running = true
	n.mu.Unlock()
	if start {
		n.g.cfg.Clock.Go(n.loop)
	} else {
		n.parker.Unpark()
	}
}

// loop hands envelopes to the handlers one at a time, each at a quiescent
// instant, so deliveries never race with running request threads.
func (n *Node) loop() {
	quiesced := false
	for {
		n.mu.Lock()
		if len(n.inbox) == 0 {
			n.running = false
			n.mu.Unlock()
			return
		}
		if !quiesced {
			n.mu.Unlock()
			woken := n.parker.ParkTimeout(0)
			quiesced = !woken
			continue
		}
		env := n.inbox[0]
		n.inbox = n.inbox[1:]
		n.mu.Unlock()
		quiesced = false
		n.handle(env)
	}
}

func (n *Node) handle(env Envelope) {
	switch env.Kind {
	case EnvForward:
		n.handleForward(env)
	case EnvSequenced:
		n.handleSequenced(env)
	case EnvDirect:
		if n.direct != nil {
			n.direct(env.From, env.Payload)
		}
	}
}

func (n *Node) handleForward(env Envelope) {
	if n.g.sequencer() != n.id {
		// Takeover race: pass it on to the current sequencer.
		n.sendToSequencer(env)
		return
	}
	n.sequence(env, 0)
}

// sequence assigns the next total-order slot to env and multicasts it to
// every live member. A non-zero stamp (stamped mode) becomes the shared
// virtual delivery deadline carried by the sequenced envelope.
func (n *Node) sequence(env Envelope, stamp time.Duration) {
	key := origKey(env.Origin, env.UID)
	n.mu.Lock()
	if n.assigned[key] || n.sequencedSeen[key] {
		n.mu.Unlock()
		return // duplicate (retransmission)
	}
	n.assigned[key] = true
	if n.nextAssign <= n.highestSeen {
		n.nextAssign = n.highestSeen + 1
	}
	if n.nextAssign == 0 {
		n.nextAssign = 1
	}
	seq := n.nextAssign
	n.nextAssign++
	n.mu.Unlock()

	n.g.mu.Lock()
	view := n.g.view
	n.g.mu.Unlock()
	out := env
	out.Kind = EnvSequenced
	out.Seq = seq
	out.View = view
	out.From = Origin{Replica: n.id}
	out.Stamp = stamp
	if n.g.cfg.Classify != nil {
		// Conflict-class early scheduling: classify once, at sequencing
		// time, so every member admits the request under the same class.
		out.Class = n.g.cfg.Classify(env.Payload)
	}
	for _, id := range n.g.Recipients() {
		if !n.g.alive(id) {
			continue
		}
		n.g.transfer(fmt.Sprintf("seq%v>%v", n.id, id), Origin{Replica: id}, out)
	}
}

// sequenceBatch is the group-commit form of sequence: it assigns
// consecutive total-order slots to every non-duplicate envelope in envs
// under one lock acquisition and returns the sequenced envelopes (slot
// order, shared stamp, To unset) for the caller to fan out — one
// multi-envelope frame per member instead of members×envelopes frames.
// The slot assignment, dedup, and classification are exactly sequence's.
func (n *Node) sequenceBatch(envs []Envelope, stamp time.Duration, view uint64) []Envelope {
	if len(envs) == 0 {
		return nil
	}
	out := make([]Envelope, 0, len(envs))
	n.mu.Lock()
	for _, env := range envs {
		key := origKey(env.Origin, env.UID)
		if n.assigned[key] || n.sequencedSeen[key] {
			continue // duplicate (retransmission)
		}
		n.assigned[key] = true
		if n.nextAssign <= n.highestSeen {
			n.nextAssign = n.highestSeen + 1
		}
		if n.nextAssign == 0 {
			n.nextAssign = 1
		}
		o := env
		o.Kind = EnvSequenced
		o.Seq = n.nextAssign
		n.nextAssign++
		o.View = view
		o.From = Origin{Replica: n.id}
		o.Stamp = stamp
		out = append(out, o)
	}
	n.mu.Unlock()
	if n.g.cfg.Classify != nil {
		for i := range out {
			out[i].Class = n.g.cfg.Classify(out[i].Payload)
		}
	}
	return out
}

func (n *Node) handleSequenced(env Envelope) {
	key := origKey(env.Origin, env.UID)
	n.mu.Lock()
	n.sequencedSeen[key] = true
	if env.Seq > n.highestSeen {
		n.highestSeen = env.Seq
	}
	if !env.Origin.IsClient && env.Origin.Replica == n.id {
		delete(n.pending, env.UID) // our broadcast made it into the order
	}
	if env.Seq < n.nextDeliver {
		n.mu.Unlock()
		return // duplicate of an already delivered slot
	}
	n.holdback[env.Seq] = env
	var ready []Envelope
	for {
		e, ok := n.holdback[n.nextDeliver]
		if !ok {
			break
		}
		delete(n.holdback, n.nextDeliver)
		n.nextDeliver++
		ready = append(ready, e)
		if len(n.seqLog) == 0 {
			n.seqLogStart = e.Seq
		}
		n.seqLog = append(n.seqLog, e)
	}
	if ret := n.g.seqRetention(); ret > 0 && len(n.seqLog) > ret {
		drop := len(n.seqLog) - ret
		n.seqLog = append(n.seqLog[:0], n.seqLog[drop:]...)
		stale := n.seqLog[len(n.seqLog) : len(n.seqLog)+drop]
		for i := range stale {
			stale[i] = Envelope{} // release payload refs
		}
		n.seqLogStart += uint64(drop)
	}
	n.mu.Unlock()
	for _, e := range ready {
		if n.deliver != nil {
			n.deliver(Message{Seq: e.Seq, Origin: e.Origin, UID: e.UID, Class: e.Class, Payload: e.Payload})
		}
	}
}

// SequencedTail returns up to max delivered slots starting at from, for
// serving a restarted peer's catch-up request. ok is false when from
// predates the retained window (the peer must fetch a newer checkpoint
// instead); more is true when further slots beyond the returned batch
// have already been delivered here.
func (n *Node) SequencedTail(from uint64, max int) (envs []Envelope, more, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if from >= n.nextDeliver {
		return nil, false, true // at (or ahead of) our frontier: nothing yet
	}
	if len(n.seqLog) == 0 || from < n.seqLogStart {
		return nil, false, false // trimmed away
	}
	i := int(from - n.seqLogStart)
	end := len(n.seqLog)
	if max > 0 && i+max < end {
		end = i + max
	}
	envs = make([]Envelope, end-i)
	copy(envs, n.seqLog[i:end])
	return envs, end < len(n.seqLog), true
}

// Frontier reports the receiver's delivery state: next is the first
// undelivered total-order slot, highest the highest slot seen in any
// sequenced envelope (delivered or held back).
func (n *Node) Frontier() (next, highest uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nextDeliver, n.highestSeen
}

// Halt permanently stops the node: every subsequently enqueued envelope
// is dropped. Divergence detection uses it to freeze a replica whose
// schedule hash disagrees with the cluster majority, so it cannot
// propagate a corrupted order.
func (n *Node) Halt() {
	n.mu.Lock()
	n.halted = true
	n.inbox = nil
	n.mu.Unlock()
}

// Halted reports whether Halt was called.
func (n *Node) Halted() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.halted
}

// resumeAt rewinds/advances the receiver to deliver slot next first,
// discarding any held-back slots below it. Called by Group.ResumeLive
// after a checkpoint install, before the sequenced tail is re-injected.
func (n *Node) resumeAt(next uint64) {
	n.mu.Lock()
	n.nextDeliver = next
	if next > 0 && n.highestSeen < next-1 {
		n.highestSeen = next - 1
	}
	for seq := range n.holdback {
		if seq < next {
			delete(n.holdback, seq)
		}
	}
	// The rejoiner's retained tail restarts at the resume point; it can
	// serve as a catch-up donor for slots from here on.
	n.seqLog = nil
	n.seqLogStart = next
	n.mu.Unlock()
}
