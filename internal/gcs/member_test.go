package gcs

import (
	"testing"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// TestTakeoverQuorum pins the election quorum rule, including the two
// 2-voter behaviors the reconfiguration work distinguishes: a pair
// produced by an ordered removal elects with the lone survivor, while
// a static pair (or one shrunk by crash detection inside a larger
// config) keeps the documented stall.
func TestTakeoverQuorum(t *testing.T) {
	cases := []struct {
		name                      string
		localVoters, acks, voters int
		pairOrdered               bool
		want                      bool
	}{
		{"single member is its own majority", 1, 0, 1, false, true},
		{"3 voters, one ack is a majority", 1, 1, 3, false, true},
		{"3 voters, no acks stalls", 1, 0, 3, false, false},
		{"5 voters, two acks is a majority", 1, 2, 5, false, true},
		{"5 voters, one ack stalls", 1, 1, 5, false, false},
		// The PR 4 documented stall: a static 2-member group cannot fail
		// over — the survivor cannot tell a dead peer from a partition.
		{"static pair stalls", 1, 0, 2, false, false},
		// With slot-indexed configs an ordered removal down to 2 voters
		// is itself majority-agreed, so the remainder elects normally.
		{"ordered-removal pair elects", 1, 0, 2, true, true},
		{"ordered pair with ack elects", 1, 1, 2, true, true},
		// pairOrdered never applies outside the 2-voter shape.
		{"ordered flag ignored at 3 voters", 1, 0, 3, true, false},
		{"no local voter never elects", 0, 0, 2, true, false},
	}
	for _, c := range cases {
		if got := takeoverQuorumMet(c.localVoters, c.acks, c.voters, c.pairOrdered); got != c.want {
			t.Errorf("%s: takeoverQuorumMet(%d, %d, %d, %v) = %v, want %v",
				c.name, c.localVoters, c.acks, c.voters, c.pairOrdered, got, c.want)
		}
	}
}

// TestApplyMembership exercises the group-level voter-set mutation:
// epoch gating, learner promotion, ordered removal crash-marking, and
// the pairOrdered flag that feeds the election rule above.
func TestApplyMembership(t *testing.T) {
	clk := vclock.NewVirtual()
	g := NewGroup(Config{
		Clock:    clk,
		Members:  []ids.ReplicaID{1, 2, 3},
		Latency:  time.Millisecond,
		Learners: []ids.ReplicaID{4},
	})
	defer g.Close()

	if got := g.Learners(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Learners() = %v", got)
	}
	if got := g.Recipients(); len(got) != 4 || got[3] != 4 {
		t.Fatalf("Recipients() = %v", got)
	}
	if got := g.Members(); len(got) != 3 {
		t.Fatalf("Members() = %v", got)
	}

	// AddLearner is idempotent and a no-op for voters.
	g.AddLearner(4)
	g.AddLearner(2)
	if got := g.Learners(); len(got) != 1 {
		t.Fatalf("Learners() after re-add = %v", got)
	}

	// Activation: 4 promotes to voter, epoch advances.
	if !g.ApplyMembership(1, []ids.ReplicaID{1, 2, 3, 4}, true) {
		t.Fatal("epoch-1 apply rejected")
	}
	if got := g.Members(); len(got) != 4 || !containsID(got, 4) {
		t.Fatalf("Members() after promotion = %v", got)
	}
	if got := g.Learners(); len(got) != 0 {
		t.Fatalf("Learners() after promotion = %v", got)
	}
	if g.MembershipEpoch() != 1 {
		t.Fatalf("epoch = %d", g.MembershipEpoch())
	}

	// Stale and duplicate epochs are ignored.
	if g.ApplyMembership(1, []ids.ReplicaID{1, 2}, true) {
		t.Fatal("duplicate epoch applied")
	}
	if g.ApplyMembership(0, []ids.ReplicaID{9}, true) {
		t.Fatal("stale epoch applied")
	}

	// Ordered removal: the removed member is crash-marked immediately
	// (no detection window) and drops out of the election scan.
	if !g.ApplyMembership(2, []ids.ReplicaID{2, 3, 4}, true) {
		t.Fatal("epoch-2 apply rejected")
	}
	if g.Alive(1) {
		t.Fatal("ordered-removed member still alive")
	}
	if got := g.LiveMembers(); len(got) != 3 || containsID(got, 1) {
		t.Fatalf("LiveMembers() after removal = %v", got)
	}

	// Shrinking to an ordered pair arms the pairOrdered election rule.
	if !g.ApplyMembership(3, []ids.ReplicaID{3, 4}, true) {
		t.Fatal("epoch-3 apply rejected")
	}
	g.mu.Lock()
	pairOrdered := g.pairOrdered
	g.mu.Unlock()
	if !pairOrdered {
		t.Fatal("ordered 2-voter remainder did not set pairOrdered")
	}
}
