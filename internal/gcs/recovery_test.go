package gcs

import (
	"sync"
	"testing"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// Recovery-path unit tests: the sequenced-log retention serving donor
// catch-up, the halt switch used by divergence detection, and the
// buffer-then-replay cycle a restarted replica goes through.

func TestSequencedTailServesCatchUp(t *testing.T) {
	v := vclock.NewVirtual()
	g := NewGroup(Config{Clock: v, Members: []ids.ReplicaID{1, 2}, Latency: time.Millisecond})
	n := g.Node(2)
	n.SetDeliver(func(Message) {})
	for seq := uint64(1); seq <= 10; seq++ {
		n.handleSequenced(seqEnv(seq, 1, seq, "p"))
	}

	envs, more, ok := n.SequencedTail(4, 3)
	if !ok || !more || len(envs) != 3 {
		t.Fatalf("tail(4,3): ok=%v more=%v len=%d", ok, more, len(envs))
	}
	for i, e := range envs {
		if e.Seq != uint64(4+i) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
	// Final batch reaches the frontier: no more.
	envs, more, ok = n.SequencedTail(8, 100)
	if !ok || more || len(envs) != 3 {
		t.Fatalf("tail(8,100): ok=%v more=%v len=%d", ok, more, len(envs))
	}
	// At or past the frontier: empty but ok (nothing to say yet).
	if envs, _, ok := n.SequencedTail(11, 10); !ok || len(envs) != 0 {
		t.Fatalf("tail(11): ok=%v len=%d", ok, len(envs))
	}
	if next, highest := n.Frontier(); next != 11 || highest != 10 {
		t.Fatalf("frontier %d/%d", next, highest)
	}
}

func TestSequencedTailRetentionTrims(t *testing.T) {
	v := vclock.NewVirtual()
	g := NewGroup(Config{Clock: v, Members: []ids.ReplicaID{1, 2},
		Latency: time.Millisecond, SeqRetention: 4})
	n := g.Node(2)
	n.SetDeliver(func(Message) {})
	for seq := uint64(1); seq <= 10; seq++ {
		n.handleSequenced(seqEnv(seq, 1, seq, "p"))
	}
	// Only slots 7..10 are retained.
	if _, _, ok := n.SequencedTail(6, 10); ok {
		t.Fatal("trimmed slot 6 served")
	}
	envs, more, ok := n.SequencedTail(7, 10)
	if !ok || more || len(envs) != 4 || envs[0].Seq != 7 {
		t.Fatalf("tail(7): ok=%v more=%v envs=%v", ok, more, envs)
	}
}

func TestHaltStopsDelivery(t *testing.T) {
	n, delivered, v := newBareNode(t)
	n.Halt()
	if !n.Halted() {
		t.Fatal("Halted() false after Halt")
	}
	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		n.enqueue(seqEnv(1, 1, 1, "a"))
		v.Sleep(10 * time.Millisecond)
	})
	<-done
	if len(*delivered) != 0 {
		t.Fatal("halted node delivered a message")
	}
}

func TestResumeAtSkipsDeliveredPrefix(t *testing.T) {
	n, delivered, _ := newBareNode(t)
	// Slots 1 and 2 arrive out of band (held back / stale duplicates).
	n.handleSequenced(seqEnv(7, 1, 7, "late")) // held back
	n.resumeAt(5)
	// Stale slots below the resume point are duplicates of checkpointed
	// state and must not deliver.
	n.handleSequenced(seqEnv(2, 1, 2, "stale"))
	n.handleSequenced(seqEnv(5, 1, 5, "e"))
	n.handleSequenced(seqEnv(6, 1, 6, "f"))
	got := *delivered
	if len(got) != 3 {
		t.Fatalf("delivered %v", got)
	}
	for i, want := range []uint64{5, 6, 7} {
		if got[i].Seq != want {
			t.Fatalf("delivery %d: seq %d, want %d", i, got[i].Seq, want)
		}
	}
}

// nullTransport swallows sends; recovery tests inject envelopes directly.
type nullTransport struct {
	mu    sync.Mutex
	binds map[Origin]func(...Envelope)
}

func (n *nullTransport) Bind(at Origin, deliver func(...Envelope)) {
	n.mu.Lock()
	if n.binds == nil {
		n.binds = map[Origin]func(...Envelope){}
	}
	n.binds[at] = deliver
	n.mu.Unlock()
}
func (n *nullTransport) Send(string, Origin, Envelope) {}
func (n *nullTransport) Close() error                  { return nil }

func (n *nullTransport) deliverTo(at Origin, envs ...Envelope) {
	n.mu.Lock()
	fn := n.binds[at]
	n.mu.Unlock()
	if fn != nil {
		fn(envs...)
	}
}

// TestRecoveryBuffersThenReplays drives the full rejoin cycle of the
// group layer: live traffic arriving during recovery is buffered (the
// clock must not advance), then ResumeLive merges the fetched tail with
// the buffer and replays everything in slot order at the original
// stamps. Directs buffered during recovery are delivered afterwards, not
// dropped.
func TestRecoveryBuffersThenReplays(t *testing.T) {
	v := vclock.NewVirtual()
	v.EnablePacing(false) // follower: wall offset anchors at first SetHorizon
	tr := &nullTransport{}
	g := NewGroup(Config{
		Clock:      v,
		Members:    []ids.ReplicaID{1, 2},
		Local:      []ids.ReplicaID{2},
		Transport:  tr,
		Recovering: true,
	})
	defer g.Close()
	n := g.Node(2)
	var mu sync.Mutex
	var seqs []uint64
	var directs []Payload
	n.SetDeliver(func(m Message) {
		mu.Lock()
		seqs = append(seqs, m.Seq)
		mu.Unlock()
	})
	n.SetDirect(func(_ Origin, p Payload) {
		mu.Lock()
		directs = append(directs, p)
		mu.Unlock()
	})
	me := Origin{Replica: 2}
	stamp := func(seq uint64) time.Duration { return time.Duration(seq) * 10 * time.Millisecond }

	// Live traffic lands while we are still fetching the checkpoint.
	live := []Envelope{
		{Kind: EnvSequenced, Seq: 8, Origin: Origin{Replica: 1}, UID: 8, To: me, Stamp: stamp(8), Payload: "l8"},
		{Kind: EnvDirect, From: Origin{Replica: 1}, To: me, Payload: "lsa"},
		{Kind: EnvSequenced, Seq: 9, Origin: Origin{Replica: 1}, UID: 9, To: me, Stamp: stamp(9), Payload: "l9"},
		{Kind: EnvHorizon, To: me, Stamp: stamp(12)},
	}
	tr.deliverTo(me, live...)
	if min, max, count := g.BufferedSeqRange(); min != 8 || max != 9 || count != 2 {
		t.Fatalf("buffered range %d..%d (%d)", min, max, count)
	}
	if !g.Recovering() {
		t.Fatal("left recovery mode early")
	}

	// The donor's tail covers slots 6..8 (overlapping the buffer at 8).
	tail := []Envelope{
		{Kind: EnvSequenced, Seq: 6, Origin: Origin{Replica: 1}, UID: 6, To: me, Stamp: stamp(6), Payload: "t6"},
		{Kind: EnvSequenced, Seq: 7, Origin: Origin{Replica: 1}, UID: 7, To: me, Stamp: stamp(7), Payload: "t7"},
		{Kind: EnvSequenced, Seq: 8, Origin: Origin{Replica: 1}, UID: 8, To: me, Stamp: stamp(8), Payload: "t8"},
	}
	g.ResumeLive(6, tail)
	if g.Recovering() {
		t.Fatal("still recovering after ResumeLive")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		done := len(seqs) >= 4 && len(directs) >= 1
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 4 {
		t.Fatalf("delivered slots %v, want 6 7 8 9", seqs)
	}
	for i, want := range []uint64{6, 7, 8, 9} {
		if seqs[i] != want {
			t.Fatalf("slot order %v", seqs)
		}
	}
	if len(directs) != 1 || directs[0] != "lsa" {
		t.Fatalf("directs %v", directs)
	}
	// The replay must have run at full speed: every stamp was behind the
	// horizon (anchored at stamp(12)) the moment it was scheduled.
	if v.Now() < stamp(9) {
		t.Fatalf("clock did not reach the last stamp: %v", v.Now())
	}
}

// TestStaleViewFrameRevivesStraggler pins the split-healing rule: a
// member still emitting frames of an older view (a sequencer that
// stalled through its own deposition — alive, but crash-marked by the
// election) must be revived by that traffic. Crash-marked members are
// excluded from the new view's horizon multicasts, so without the
// revive the straggler never learns the new view and the group splits
// permanently.
func TestStaleViewFrameRevivesStraggler(t *testing.T) {
	v := vclock.NewVirtual()
	v.EnablePacing(false)
	tr := &nullTransport{}
	g := NewGroup(Config{
		Clock:     v,
		Members:   []ids.ReplicaID{1, 2, 3},
		Local:     []ids.ReplicaID{2},
		Transport: tr,
	})
	defer g.Close()
	me := Origin{Replica: 2}

	// Member 2 took over view 1; the election crash-marked member 1.
	g.AdoptView(1, 2)
	if g.Crash(1) {
		t.Fatal("view adoption should have crash-marked member 1 already")
	}

	// A view-0 heartbeat from member 1 arrives: it is alive after all,
	// just stuck in the old view. The frame must be dropped AND member 1
	// revived so horizon multicasts resume reaching it.
	tr.deliverTo(me, Envelope{
		Kind:  EnvHorizon,
		View:  0,
		From:  Origin{Replica: 1},
		To:    me,
		Stamp: 5 * time.Millisecond,
	})
	if !g.Crash(1) {
		t.Fatal("stale-view frame from a live member did not revive it")
	}
}

// TestClientUIDBase: a restarted client process must number its requests
// above every uid its previous incarnation used (the sequencer's dedup
// is per (client, uid) for the cluster's lifetime).
func TestClientUIDBase(t *testing.T) {
	tg := newTestGroup(t)
	c := tg.g.NewClientEndpoint(7)
	c.SetUIDBase(1000)
	var uid uint64
	tg.drive(t, func() { uid, _ = c.Broadcast("req") })
	if uid != 1001 {
		t.Fatalf("uid %d, want 1001", uid)
	}
	c.SetUIDBase(500) // never moves backwards
	tg.drive(t, func() { uid, _ = c.Broadcast("req2") })
	if uid != 1002 {
		t.Fatalf("uid %d, want 1002", uid)
	}
}
