// Package gcs simulates the group communication system that FTflex
// relies on (paper Sect. 2): totally ordered broadcast to a static group
// of replicas, duplicate suppression, point-to-point messages, and a
// simple sequencer-takeover protocol for leader failure.
//
// The simulation runs on a vclock.Clock: every message transfer costs the
// configured one-way latency of virtual time, and per-node delivery loops
// hand messages to the replication layer one at a time, only when the
// rest of the system is quiescent at the current instant — the same
// discipline as core's event pump, which keeps simultaneous deliveries
// deterministic.
//
// Total order is provided by a fixed-sequencer protocol: nodes (and
// clients) forward payloads to the current sequencer, which assigns
// sequence numbers and multicasts; receivers deliver in sequence order
// through a hold-back queue, suppressing duplicates by (origin, uid).
// When the sequencer crashes, surviving nodes detect the failure after
// DetectTimeout, adopt the lowest-id survivor as the new sequencer, and
// retransmit their unsequenced forwards — the takeover cost that
// experiment E5 measures for LSA versus the symmetric algorithms.
package gcs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// Payload is an application-level message body (defined by the
// replication layer).
type Payload interface{}

// Message is a totally ordered delivery.
type Message struct {
	Seq     uint64 // position in the total order (1-based)
	Origin  Origin
	UID     uint64 // per-origin unique id (duplicate suppression)
	Payload Payload
}

// Origin identifies the producer of a broadcast: a replica or a client.
type Origin struct {
	Replica  ids.ReplicaID // valid if IsClient is false
	Client   ids.ClientID  // valid if IsClient is true
	IsClient bool
}

func (o Origin) String() string {
	if o.IsClient {
		return o.Client.String()
	}
	return o.Replica.String()
}

// Config parameterises a simulated group.
type Config struct {
	Clock   vclock.Clock
	Members []ids.ReplicaID
	// Latency is the one-way transfer time between any two endpoints
	// (including a node's messages to itself, for symmetry).
	Latency time.Duration
	// DetectTimeout is how long survivors take to detect a crashed
	// sequencer and fail over.
	DetectTimeout time.Duration
}

// Stats counts network traffic, for the message-overhead comparisons of
// experiments E5/E6.
type Stats struct {
	mu        sync.Mutex
	Transfers int // individual point-to-point transfers on the wire
	Broadcast int // total-order broadcasts initiated
	Direct    int // direct (non-ordered) application messages
}

func (s *Stats) add(transfers, broadcasts, directs int) {
	s.mu.Lock()
	s.Transfers += transfers
	s.Broadcast += broadcasts
	s.Direct += directs
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() (transfers, broadcasts, directs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Transfers, s.Broadcast, s.Direct
}

// Group is one simulated process group plus its client endpoints.
type Group struct {
	cfg   Config
	stats Stats

	mu        sync.Mutex
	nodes     map[ids.ReplicaID]*Node
	clients   map[ids.ClientID]*ClientEndpoint
	crashed   map[ids.ReplicaID]bool
	crashedAt map[ids.ReplicaID]time.Duration

	linksMu sync.Mutex
	links   map[string]*link
}

// NewGroup creates the group and its member nodes.
func NewGroup(cfg Config) *Group {
	if cfg.Clock == nil {
		panic("gcs: Config.Clock is required")
	}
	if len(cfg.Members) == 0 {
		panic("gcs: Config.Members must not be empty")
	}
	if cfg.DetectTimeout <= 0 {
		cfg.DetectTimeout = 50 * time.Millisecond
	}
	members := append([]ids.ReplicaID(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	cfg.Members = members
	g := &Group{
		cfg:       cfg,
		nodes:     map[ids.ReplicaID]*Node{},
		clients:   map[ids.ClientID]*ClientEndpoint{},
		crashed:   map[ids.ReplicaID]bool{},
		crashedAt: map[ids.ReplicaID]time.Duration{},
	}
	for _, id := range members {
		g.nodes[id] = newNode(g, id)
	}
	return g
}

// Stats exposes the traffic counters.
func (g *Group) Stats() *Stats { return &g.stats }

// Node returns the member with the given id.
func (g *Group) Node(id ids.ReplicaID) *Node {
	n := g.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("gcs: unknown member %v", id))
	}
	return n
}

// Members returns the configured member ids in ascending order.
func (g *Group) Members() []ids.ReplicaID {
	return append([]ids.ReplicaID(nil), g.cfg.Members...)
}

// NewClientEndpoint registers a client endpoint.
func (g *Group) NewClientEndpoint(id ids.ClientID) *ClientEndpoint {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.clients[id]; dup {
		panic(fmt.Sprintf("gcs: duplicate client %v", id))
	}
	c := newClientEndpoint(g, id)
	g.clients[id] = c
	return c
}

// sequencer returns the sequencer as *currently visible* to senders: a
// crashed sequencer keeps receiving (and dropping) traffic until the
// failure-detection timeout passes — that lost window is exactly the
// takeover cost experiment E5 measures.
func (g *Group) sequencer() ids.ReplicaID {
	now := g.cfg.Clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, id := range g.cfg.Members {
		if at, dead := g.crashedAt[id]; dead && now >= at+g.cfg.DetectTimeout {
			continue // failure already detected: skip
		}
		return id
	}
	return -1
}

// actualSequencerLocked ignores detection delay (internal liveness view).
func (g *Group) actualSequencerLocked() ids.ReplicaID {
	for _, id := range g.cfg.Members {
		if !g.crashed[id] {
			return id
		}
	}
	return -1
}

// alive reports whether a member is still up.
func (g *Group) alive(id ids.ReplicaID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.crashed[id]
}

// Alive reports whether a member is still up (public view for the
// replication layer, e.g. to pick the nested-invocation performer).
func (g *Group) Alive(id ids.ReplicaID) bool { return g.alive(id) }

// LiveMembers returns the live member ids in ascending order.
func (g *Group) LiveMembers() []ids.ReplicaID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []ids.ReplicaID
	for _, id := range g.cfg.Members {
		if !g.crashed[id] {
			out = append(out, id)
		}
	}
	return out
}

// Crash stops a member: it no longer sends or receives anything. If the
// member was the sequencer, survivors fail over after DetectTimeout:
// they adopt the next sequencer and retransmit unsequenced forwards.
// Returns false if the member was already down.
func (g *Group) Crash(id ids.ReplicaID) bool {
	g.mu.Lock()
	if g.crashed[id] {
		g.mu.Unlock()
		return false
	}
	wasSequencer := g.actualSequencerLocked() == id
	g.crashed[id] = true
	g.crashedAt[id] = g.cfg.Clock.Now()
	newSeq := g.actualSequencerLocked()
	clients := make([]*ClientEndpoint, 0, len(g.clients))
	for _, c := range g.clients {
		clients = append(clients, c)
	}
	g.mu.Unlock()

	if !wasSequencer || newSeq < 0 {
		return true
	}
	// Failure detection and retransmission after the timeout.
	for _, n := range g.nodes {
		if n.id == id {
			continue
		}
		n := n
		g.cfg.Clock.Go(func() {
			g.cfg.Clock.Sleep(g.cfg.DetectTimeout)
			n.retransmitPending()
		})
	}
	for _, c := range clients {
		c := c
		g.cfg.Clock.Go(func() {
			g.cfg.Clock.Sleep(g.cfg.DetectTimeout)
			c.retransmitPending()
		})
	}
	return true
}

// envelope is the wire format.
type envKind int

const (
	envForward   envKind = iota // needs sequencing (to the sequencer)
	envSequenced                // sequenced multicast (to all members)
	envDirect                   // application point-to-point
)

type envelope struct {
	kind    envKind
	seq     uint64
	origin  Origin
	uid     uint64
	from    Origin // transport-level sender (for direct messages)
	payload Payload
}
