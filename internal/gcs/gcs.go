// Package gcs simulates the group communication system that FTflex
// relies on (paper Sect. 2): totally ordered broadcast to a static group
// of replicas, duplicate suppression, point-to-point messages, and a
// simple sequencer-takeover protocol for leader failure.
//
// The simulation runs on a vclock.Clock: every message transfer costs the
// configured one-way latency of virtual time, and per-node delivery loops
// hand messages to the replication layer one at a time, only when the
// rest of the system is quiescent at the current instant — the same
// discipline as core's event pump, which keeps simultaneous deliveries
// deterministic.
//
// Total order is provided by a fixed-sequencer protocol: nodes (and
// clients) forward payloads to the current sequencer, which assigns
// sequence numbers and multicasts; receivers deliver in sequence order
// through a hold-back queue, suppressing duplicates by (origin, uid).
// When the sequencer crashes, surviving nodes detect the failure after
// DetectTimeout, adopt the lowest-id survivor as the new sequencer, and
// retransmit their unsequenced forwards — the takeover cost that
// experiment E5 measures for LSA versus the symmetric algorithms.
package gcs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// Payload is an application-level message body (defined by the
// replication layer).
type Payload interface{}

// Message is a totally ordered delivery.
type Message struct {
	Seq     uint64 // position in the total order (1-based)
	Origin  Origin
	UID     uint64 // per-origin unique id (duplicate suppression)
	Payload Payload
}

// Origin identifies the producer of a broadcast: a replica or a client.
type Origin struct {
	Replica  ids.ReplicaID // valid if IsClient is false
	Client   ids.ClientID  // valid if IsClient is true
	IsClient bool
}

func (o Origin) String() string {
	if o.IsClient {
		return o.Client.String()
	}
	return o.Replica.String()
}

// Config parameterises a group.
type Config struct {
	Clock   vclock.Clock
	Members []ids.ReplicaID
	// Latency is the one-way transfer time between any two endpoints
	// (including a node's messages to itself, for symmetry). Only the
	// in-memory transport uses it.
	Latency time.Duration
	// DetectTimeout is how long survivors take to detect a crashed
	// sequencer and fail over.
	DetectTimeout time.Duration

	// Transport carries envelopes between endpoints. nil selects the
	// in-memory virtual-latency transport (the simulator). A distributed
	// deployment passes the TCP transport from internal/wire.
	Transport Transport
	// Local lists the member ids hosted in this process. nil means all
	// members are local (the simulator); an empty non-nil slice means
	// none are (a client-only process such as a load generator).
	Local []ids.ReplicaID
	// Tick and Budget configure stamped sequencing, active when a
	// non-nil Transport is combined with a Virtual clock: the sequencer
	// drains forwarded broadcasts every Tick and stamps each sequenced
	// message with a virtual delivery deadline Budget in the future.
	// Every member injects the message into its own virtual timeline at
	// exactly that instant and treats the stamps as its clock horizon,
	// so all replicas execute an identical virtual schedule even though
	// real network delays differ. When stamped sequencing is active the
	// clock must have pacing enabled (vclock.Virtual.EnablePacing)
	// before NewGroup is called.
	Tick   time.Duration
	Budget time.Duration

	// Recovering starts the group in recovery mode (stamped mode only):
	// all transport traffic is buffered instead of injected, so the
	// virtual clock cannot advance past the stamps of the sequenced tail
	// the process is about to fetch from a donor. ResumeLive ends the
	// mode, replaying the tail and the buffered live stream in seq order
	// at their original stamps.
	Recovering bool
	// SeqRetention bounds the per-node log of delivered sequenced
	// envelopes kept for donor-side catch-up (SequencedTail). 0 applies
	// DefaultSeqRetention; negative retains everything.
	SeqRetention int
}

// DefaultSeqRetention is the sequenced-log bound applied when Config
// leaves SeqRetention at zero. A rejoining replica can replay at most
// this many slots from a donor; a longer outage needs a checkpoint
// newer than the donor's log start (checkpoints are taken continuously,
// so in practice this bounds donor memory, not recoverability).
const DefaultSeqRetention = 16384

// Stats counts network traffic, for the message-overhead comparisons of
// experiments E5/E6.
type Stats struct {
	mu        sync.Mutex
	Transfers int // individual point-to-point transfers on the wire
	Broadcast int // total-order broadcasts initiated
	Direct    int // direct (non-ordered) application messages
}

func (s *Stats) add(transfers, broadcasts, directs int) {
	s.mu.Lock()
	s.Transfers += transfers
	s.Broadcast += broadcasts
	s.Direct += directs
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() (transfers, broadcasts, directs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Transfers, s.Broadcast, s.Direct
}

// Group is one process group plus its client endpoints. In the simulator
// every member is hosted by the same Group; in a distributed deployment
// each process hosts a Group with one local member (or none, for pure
// client processes), wired together by a shared Transport implementation.
type Group struct {
	cfg      Config
	stats    Stats
	tr       Transport
	vclk     *vclock.Virtual // non-nil when Clock is a Virtual
	stamped  bool            // stamped sequencing active (see Config.Tick)
	allLocal bool

	mu        sync.Mutex
	nodes     map[ids.ReplicaID]*Node
	localSet  map[ids.ReplicaID]bool
	clients   map[ids.ClientID]*ClientEndpoint
	crashed   map[ids.ReplicaID]bool
	crashedAt map[ids.ReplicaID]time.Duration
	isClosed  bool

	fwdMu sync.Mutex
	fwdQ  []Envelope // forwards awaiting the next sequencing tick

	recMu      sync.Mutex
	recovering bool
	recBuf     []Envelope // transport arrivals buffered during recovery

	closed chan struct{}
}

// NewGroup creates the group and its locally hosted member nodes.
func NewGroup(cfg Config) *Group {
	if cfg.Clock == nil {
		panic("gcs: Config.Clock is required")
	}
	if len(cfg.Members) == 0 {
		panic("gcs: Config.Members must not be empty")
	}
	if cfg.DetectTimeout <= 0 {
		cfg.DetectTimeout = 50 * time.Millisecond
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 5 * time.Millisecond
	}
	members := append([]ids.ReplicaID(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	cfg.Members = members
	local := cfg.Local
	if local == nil {
		local = members
	}
	g := &Group{
		cfg:       cfg,
		nodes:     map[ids.ReplicaID]*Node{},
		localSet:  map[ids.ReplicaID]bool{},
		clients:   map[ids.ClientID]*ClientEndpoint{},
		crashed:   map[ids.ReplicaID]bool{},
		crashedAt: map[ids.ReplicaID]time.Duration{},
		closed:    make(chan struct{}),
	}
	for _, id := range local {
		g.localSet[id] = true
	}
	g.allLocal = true
	for _, id := range members {
		if !g.localSet[id] {
			g.allLocal = false
		}
	}
	g.vclk, _ = cfg.Clock.(*vclock.Virtual)
	g.tr = cfg.Transport
	if g.tr == nil {
		g.tr = newMemTransport(g)
	}
	g.stamped = cfg.Transport != nil && g.vclk != nil
	g.recovering = cfg.Recovering && g.stamped
	for _, id := range members {
		if !g.localSet[id] {
			continue
		}
		n := newNode(g, id)
		g.nodes[id] = n
		g.tr.Bind(Origin{Replica: id}, func(envs ...Envelope) { g.inject(n.enqueue, envs...) })
	}
	if g.stamped && g.localSet[members[0]] {
		cfg.Clock.Go(g.runTicks)
	}
	return g
}

// Close stops the sequencing tick loop (if any) and closes the
// transport. Simulated groups never need it.
func (g *Group) Close() error {
	g.mu.Lock()
	if !g.isClosed {
		g.isClosed = true
		close(g.closed)
	}
	g.mu.Unlock()
	return g.tr.Close()
}

func (g *Group) isLocal(id ids.ReplicaID) bool { return g.localSet[id] }

// seqRetention resolves Config.SeqRetention: 0 applies the default,
// negative disables trimming.
func (g *Group) seqRetention() int {
	if g.cfg.SeqRetention == 0 {
		return DefaultSeqRetention
	}
	if g.cfg.SeqRetention < 0 {
		return 0
	}
	return g.cfg.SeqRetention
}

// Stats exposes the traffic counters.
func (g *Group) Stats() *Stats { return &g.stats }

// Node returns the member with the given id.
func (g *Group) Node(id ids.ReplicaID) *Node {
	n := g.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("gcs: unknown member %v", id))
	}
	return n
}

// Members returns the configured member ids in ascending order.
func (g *Group) Members() []ids.ReplicaID {
	return append([]ids.ReplicaID(nil), g.cfg.Members...)
}

// NewClientEndpoint registers a client endpoint.
func (g *Group) NewClientEndpoint(id ids.ClientID) *ClientEndpoint {
	g.mu.Lock()
	if _, dup := g.clients[id]; dup {
		g.mu.Unlock()
		panic(fmt.Sprintf("gcs: duplicate client %v", id))
	}
	c := newClientEndpoint(g, id)
	g.clients[id] = c
	g.mu.Unlock()
	g.tr.Bind(Origin{Client: id, IsClient: true}, func(envs ...Envelope) { g.inject(c.enqueue, envs...) })
	return c
}

// sequencer returns the sequencer as *currently visible* to senders: a
// crashed sequencer keeps receiving (and dropping) traffic until the
// failure-detection timeout passes — that lost window is exactly the
// takeover cost experiment E5 measures.
func (g *Group) sequencer() ids.ReplicaID {
	now := g.cfg.Clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, id := range g.cfg.Members {
		if at, dead := g.crashedAt[id]; dead && now >= at+g.cfg.DetectTimeout {
			continue // failure already detected: skip
		}
		return id
	}
	return -1
}

// actualSequencerLocked ignores detection delay (internal liveness view).
func (g *Group) actualSequencerLocked() ids.ReplicaID {
	for _, id := range g.cfg.Members {
		if !g.crashed[id] {
			return id
		}
	}
	return -1
}

// alive reports whether a member is still up.
func (g *Group) alive(id ids.ReplicaID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.crashed[id]
}

// Alive reports whether a member is still up (public view for the
// replication layer, e.g. to pick the nested-invocation performer).
func (g *Group) Alive(id ids.ReplicaID) bool { return g.alive(id) }

// LiveMembers returns the live member ids in ascending order.
func (g *Group) LiveMembers() []ids.ReplicaID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []ids.ReplicaID
	for _, id := range g.cfg.Members {
		if !g.crashed[id] {
			out = append(out, id)
		}
	}
	return out
}

// Crash stops a member: it no longer sends or receives anything. If the
// member was the sequencer, survivors fail over after DetectTimeout:
// they adopt the next sequencer and retransmit unsequenced forwards.
// Returns false if the member was already down.
func (g *Group) Crash(id ids.ReplicaID) bool {
	g.mu.Lock()
	if g.crashed[id] {
		g.mu.Unlock()
		return false
	}
	wasSequencer := g.actualSequencerLocked() == id
	g.crashed[id] = true
	g.crashedAt[id] = g.cfg.Clock.Now()
	newSeq := g.actualSequencerLocked()
	clients := make([]*ClientEndpoint, 0, len(g.clients))
	for _, c := range g.clients {
		clients = append(clients, c)
	}
	g.mu.Unlock()

	if !wasSequencer || newSeq < 0 {
		return true
	}
	// Failure detection and retransmission after the timeout.
	for _, n := range g.nodes {
		if n.id == id {
			continue
		}
		n := n
		g.cfg.Clock.Go(func() {
			g.cfg.Clock.Sleep(g.cfg.DetectTimeout)
			n.retransmitPending()
		})
	}
	for _, c := range clients {
		c := c
		g.cfg.Clock.Go(func() {
			g.cfg.Clock.Sleep(g.cfg.DetectTimeout)
			c.retransmitPending()
		})
	}
	return true
}

// EnvKind classifies an envelope on the wire.
type EnvKind int

const (
	EnvForward   EnvKind = iota // needs sequencing (to the sequencer)
	EnvSequenced                // sequenced multicast (to all members)
	EnvDirect                   // application point-to-point
	EnvHorizon                  // time-horizon heartbeat (stamped mode)
)

// Envelope is the transport-level unit of transfer. The wire codec in
// internal/wire serializes exactly these fields.
type Envelope struct {
	Kind   EnvKind
	Seq    uint64 // total-order slot (sequenced envelopes)
	Origin Origin // broadcast originator
	UID    uint64 // per-origin unique id (duplicate suppression)
	From   Origin // transport-level sender (direct messages)
	To     Origin // destination endpoint
	// Stamp is the virtual delivery deadline assigned by the sequencer
	// in stamped mode (zero in the simulator): receivers inject the
	// envelope into their virtual timeline at exactly this instant. On
	// an EnvHorizon heartbeat it is a promise that no later sequenced
	// envelope will carry a smaller stamp.
	Stamp   time.Duration
	Payload Payload
}

// transfer puts env on the named FIFO link toward to, counting it.
func (g *Group) transfer(key string, to Origin, env Envelope) {
	g.stats.add(1, 0, 0)
	env.To = to
	g.tr.Send(key, to, env)
}

// transferBatch sends envs as one atomic unit when the transport
// supports batching (falling back to individual sends otherwise).
func (g *Group) transferBatch(key string, to Origin, envs []Envelope) {
	g.stats.add(len(envs), 0, 0)
	for i := range envs {
		envs[i].To = to
	}
	if bs, ok := g.tr.(BatchSender); ok {
		bs.SendBatch(key, to, envs)
		return
	}
	for _, e := range envs {
		g.tr.Send(key, to, e)
	}
}

// Delivery-order ranks for stamped-mode timers (same band as links).
var (
	injectOrder = linkOrderBase + fnv32("inject")
	tickOrder   = linkOrderBase + fnv32("tick")
)

// inject routes envelopes arriving from the transport into the local
// endpoint. In the simulator this is a straight pass-through; in stamped
// mode sequenced envelopes are scheduled at their stamped virtual
// instant, forwards are queued for the next sequencing tick, and
// horizon heartbeats raise the clock horizon.
func (g *Group) inject(enqueue func(Envelope), envs ...Envelope) {
	if !g.stamped {
		for _, e := range envs {
			enqueue(e)
		}
		return
	}
	// Recovery mode: buffer everything. Injecting live sequenced traffic
	// now would advance the virtual clock past the stamps of the tail we
	// are about to fetch, executing replayed requests at the wrong virtual
	// instants — divergence. Direct messages (LSA decisions, replies) are
	// buffered too, not dropped: the transport already acked them, so a
	// drop would be permanent.
	g.recMu.Lock()
	if g.recovering {
		g.recBuf = append(g.recBuf, envs...)
		g.recMu.Unlock()
		return
	}
	g.recMu.Unlock()
	var fwds []Envelope
	for _, e := range envs {
		switch {
		case e.Kind == EnvHorizon:
			g.vclk.SetHorizon(e.Stamp)
		case e.Kind == EnvForward:
			fwds = append(fwds, e)
		case e.Kind == EnvSequenced && e.Stamp > 0:
			env := e
			g.vclk.ScheduleAt(env.Stamp, injectOrder, "gcs inject", func() { enqueue(env) })
			g.vclk.SetHorizon(env.Stamp)
		default:
			enqueue(e)
		}
	}
	if len(fwds) > 0 {
		g.fwdMu.Lock()
		g.fwdQ = append(g.fwdQ, fwds...)
		g.fwdMu.Unlock()
	}
}

// BufferedSeqRange reports the sequenced envelopes buffered while the
// group is in recovery mode: the lowest and highest slot seen and their
// count. The recovery orchestrator uses it to decide when the fetched
// tail is contiguous with the live stream.
func (g *Group) BufferedSeqRange() (min, max uint64, count int) {
	g.recMu.Lock()
	defer g.recMu.Unlock()
	for _, e := range g.recBuf {
		if e.Kind != EnvSequenced {
			continue
		}
		if count == 0 || e.Seq < min {
			min = e.Seq
		}
		if e.Seq > max {
			max = e.Seq
		}
		count++
	}
	return min, max, count
}

// Recovering reports whether the group is still buffering (recovery
// mode).
func (g *Group) Recovering() bool {
	g.recMu.Lock()
	defer g.recMu.Unlock()
	return g.recovering
}

// ResumeLive ends recovery mode for the local member node: the fetched
// sequenced tail and the live traffic buffered since startup are merged
// (deduplicated by slot, ascending) and injected at their original
// virtual stamps, so the replayed schedule is bit-identical to the one
// the survivors executed. The horizon is raised to the highest stamp
// first — that anchors the paced clock's wall offset at roughly
// cluster-now, so the whole tail is wall-overdue and replays at full
// speed instead of in real time.
//
// next is the first total-order slot the node still has to deliver
// (checkpoint seq + 1). Tail entries and buffered slots below it are
// discarded.
func (g *Group) ResumeLive(next uint64, tail []Envelope) {
	g.recMu.Lock()
	defer g.recMu.Unlock()
	if !g.recovering {
		return
	}
	g.recovering = false
	buf := g.recBuf
	g.recBuf = nil

	var node *Node
	for _, n := range g.nodes {
		node = n // recovery mode hosts exactly one local member
	}
	if node == nil {
		return
	}

	var maxStamp time.Duration
	seqs := map[uint64]Envelope{}
	var order []uint64
	var others []Envelope
	classify := func(e Envelope) {
		switch {
		case e.Kind == EnvHorizon:
			if e.Stamp > maxStamp {
				maxStamp = e.Stamp
			}
		case e.Kind == EnvSequenced:
			if e.Seq < next {
				return
			}
			if _, dup := seqs[e.Seq]; dup {
				return
			}
			seqs[e.Seq] = e
			order = append(order, e.Seq)
			if e.Stamp > maxStamp {
				maxStamp = e.Stamp
			}
		default:
			// Directs (LSA decisions, replies) keep their arrival order;
			// stray forwards re-route to the sequencer via handleForward.
			others = append(others, e)
		}
	}
	for _, e := range tail {
		classify(e)
	}
	for _, e := range buf {
		classify(e)
	}
	sortUint64(order)

	if maxStamp > 0 {
		g.vclk.SetHorizon(maxStamp)
	}
	node.resumeAt(next)
	// Ascending slot order = non-decreasing stamp order: same-stamp
	// envelopes keep their sequencing order because ScheduleAt breaks
	// (at, order) ties by registration sequence.
	for _, s := range order {
		env := seqs[s]
		if env.Stamp > 0 {
			env := env
			g.vclk.ScheduleAt(env.Stamp, injectOrder, "gcs inject", func() { node.enqueue(env) })
		} else {
			node.enqueue(env)
		}
	}
	for _, e := range others {
		node.enqueue(e)
	}
}

// runTicks is the stamped-mode sequencing loop, run only by the process
// hosting the sequencer (the lowest member). Each tick it assigns total-
// order slots to the forwards accumulated since the previous tick,
// stamping them with a shared virtual delivery deadline, and multicasts
// a horizon heartbeat so follower clocks keep flowing through idle
// periods. Tick instants are exact virtual multiples of Config.Tick, so
// the stamps a given forward sequence receives are reproducible.
func (g *Group) runTicks() {
	seqID := g.cfg.Members[0]
	n := g.nodes[seqID]
	for {
		vclock.SleepOrdered(g.cfg.Clock, g.cfg.Tick, "gcs tick", tickOrder)
		select {
		case <-g.closed:
			return
		default:
		}
		g.fwdMu.Lock()
		batch := g.fwdQ
		g.fwdQ = nil
		g.fwdMu.Unlock()
		deadline := g.cfg.Clock.Now() + g.cfg.Budget
		for _, env := range batch {
			n.sequence(env, deadline)
		}
		for _, id := range g.cfg.Members {
			if g.isLocal(id) {
				continue
			}
			g.transfer(fmt.Sprintf("hz%v>%v", seqID, id), Origin{Replica: id},
				Envelope{Kind: EnvHorizon, Stamp: deadline})
		}
	}
}
