// Package gcs simulates the group communication system that FTflex
// relies on (paper Sect. 2): totally ordered broadcast to a static group
// of replicas, duplicate suppression, point-to-point messages, and a
// simple sequencer-takeover protocol for leader failure.
//
// The simulation runs on a vclock.Clock: every message transfer costs the
// configured one-way latency of virtual time, and per-node delivery loops
// hand messages to the replication layer one at a time, only when the
// rest of the system is quiescent at the current instant — the same
// discipline as core's event pump, which keeps simultaneous deliveries
// deterministic.
//
// Total order is provided by a fixed-sequencer protocol: nodes (and
// clients) forward payloads to the current sequencer, which assigns
// sequence numbers and multicasts; receivers deliver in sequence order
// through a hold-back queue, suppressing duplicates by (origin, uid).
// When the sequencer crashes, surviving nodes detect the failure after
// DetectTimeout, adopt the lowest-id survivor as the new sequencer, and
// retransmit their unsequenced forwards — the takeover cost that
// experiment E5 measures for LSA versus the symmetric algorithms.
package gcs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"detmt/internal/ids"
	"detmt/internal/vclock"
)

// Payload is an application-level message body (defined by the
// replication layer).
type Payload interface{}

// ErrNoSequencer reports that a broadcast could not be submitted because
// every group member is crash-detected: there is nobody left to assign a
// total-order slot, so the send fails cleanly instead of misrouting.
var ErrNoSequencer = errors.New("gcs: no live sequencer")

// Message is a totally ordered delivery.
type Message struct {
	Seq    uint64 // position in the total order (1-based)
	Origin Origin
	UID    uint64 // per-origin unique id (duplicate suppression)
	// Class is the conflict class the sequencer stamped on the payload
	// via Config.Classify (0 = conservative global class). Class-aware
	// replica schedulers use it for early scheduling; everyone else can
	// ignore it.
	Class   uint32
	Payload Payload
}

// Origin identifies the producer of a broadcast: a replica or a client.
type Origin struct {
	Replica  ids.ReplicaID // valid if IsClient is false
	Client   ids.ClientID  // valid if IsClient is true
	IsClient bool
}

func (o Origin) String() string {
	if o.IsClient {
		return o.Client.String()
	}
	return o.Replica.String()
}

// Config parameterises a group.
type Config struct {
	Clock   vclock.Clock
	Members []ids.ReplicaID
	// Group names the replication group this endpoint belongs to in a
	// sharded deployment ("g0", "g1", ...; "" for single-group). It is
	// the group's identity, not behavior: member ids, views, and seqno
	// spaces of distinct groups are independent, and the tag shows up in
	// log prefixes and server status so interleaved multi-tenant output
	// stays attributable. The matching wire-transport Group tag (which
	// DOES enforce isolation at handshake) is set separately by the
	// process that builds the transport.
	Group string
	// Latency is the one-way transfer time between any two endpoints
	// (including a node's messages to itself, for symmetry). Only the
	// in-memory transport uses it.
	Latency time.Duration
	// DetectTimeout is how long survivors take to detect a crashed
	// sequencer and fail over.
	DetectTimeout time.Duration

	// Transport carries envelopes between endpoints. nil selects the
	// in-memory virtual-latency transport (the simulator). A distributed
	// deployment passes the TCP transport from internal/wire.
	Transport Transport
	// Local lists the member ids hosted in this process. nil means all
	// members are local (the simulator); an empty non-nil slice means
	// none are (a client-only process such as a load generator).
	Local []ids.ReplicaID
	// Learners lists members that receive sequenced traffic and horizon
	// multicasts but carry no quorum weight and cannot be elected — the
	// state a joining replica occupies between its AddReplica change
	// being delivered and that change's activation slot. A joining
	// process lists itself here (and in Local) while its id is absent
	// from Members; established processes learn of learners at runtime
	// via AddLearner.
	Learners []ids.ReplicaID
	// Tick and Budget configure stamped sequencing, active when a
	// non-nil Transport is combined with a Virtual clock: the sequencer
	// drains forwarded broadcasts every Tick and stamps each sequenced
	// message with a virtual delivery deadline Budget in the future.
	// Every member injects the message into its own virtual timeline at
	// exactly that instant and treats the stamps as its clock horizon,
	// so all replicas execute an identical virtual schedule even though
	// real network delays differ. When stamped sequencing is active the
	// clock must have pacing enabled (vclock.Virtual.EnablePacing)
	// before NewGroup is called.
	Tick   time.Duration
	Budget time.Duration

	// AdaptiveTick replaces the fixed Tick drain with a load-responsive
	// policy: the sequencer drains immediately when the forward queue
	// reaches BatchThreshold (bounding queueing delay under burst load),
	// shrinks the tick to MinTick while saturated (amortising stamping
	// over large batches), and stretches it toward MaxTick when idle
	// (fewer empty heartbeat multicasts; the first arrival into an empty
	// queue wakes a stretched tick immediately, so idle stretching never
	// taxes latency). Stamps stay monotone and only
	// the sequencer runs the policy — followers obey the stamps — so the
	// schedule every replica executes is unchanged for a given arrival
	// order; what changes is how arrivals map to ticks, which is already
	// timing-dependent under the fixed tick. Off by default: fixed ticks
	// keep stamp instants at exact Tick multiples, which some
	// reproducibility harnesses rely on.
	AdaptiveTick bool
	// MinTick is the smallest adaptive tick (default Tick/4, floored at
	// 100µs). MaxTick is the largest (default 4*Tick, capped at
	// DetectTimeout/4 so horizon heartbeats keep the failure detector
	// quiet). BatchThreshold is the queue depth that triggers an
	// immediate drain (default 64).
	MinTick        time.Duration
	MaxTick        time.Duration
	BatchThreshold int

	// NoGroupCommit disables coalescing a tick's sequenced multicasts
	// (and the trailing horizon) into one multi-envelope frame per
	// member, reverting to one frame per envelope. Group commit is
	// order- and stamp-transparent — a tick's envelopes already share
	// one stamp and deliver in slot order — so this exists only for
	// before/after measurement and debugging.
	NoGroupCommit bool

	// FetchGap, when set (stamped mode), fetches up to max sequenced
	// slots starting at from that this process missed, from the donor
	// member. The sequencer-takeover path uses it to heal the candidate
	// before it assumes the new view; the server wires it to the wire
	// transport's catch-up fetch. Called from an unmanaged goroutine.
	FetchGap func(donor ids.ReplicaID, from uint64, max int) []Envelope

	// Recovering starts the group in recovery mode (stamped mode only):
	// all transport traffic is buffered instead of injected, so the
	// virtual clock cannot advance past the stamps of the sequenced tail
	// the process is about to fetch from a donor. ResumeLive ends the
	// mode, replaying the tail and the buffered live stream in seq order
	// at their original stamps.
	Recovering bool
	// SeqRetention bounds the per-node log of delivered sequenced
	// envelopes kept for donor-side catch-up (SequencedTail). 0 applies
	// DefaultSeqRetention; negative retains everything.
	SeqRetention int

	// Classify, when set, runs at the sequencer against every payload
	// being assigned a total-order slot and returns its conflict class
	// (package earlysched); the class is stamped into the sequenced
	// envelope and delivered in Message.Class on every member. nil (or a
	// return of 0) means the conservative global class. Classify must be
	// a pure function of the payload: every member that could become
	// sequencer must stamp identically, or a takeover would change the
	// classes mid-stream.
	Classify func(Payload) uint32

	// Logf, when set, receives view-change and failure-detection events
	// (elections are rare and operator-relevant; nothing on the per-
	// message hot path logs).
	Logf func(format string, args ...interface{})
}

// DefaultSeqRetention is the sequenced-log bound applied when Config
// leaves SeqRetention at zero. A rejoining replica can replay at most
// this many slots from a donor; a longer outage needs a checkpoint
// newer than the donor's log start (checkpoints are taken continuously,
// so in practice this bounds donor memory, not recoverability).
const DefaultSeqRetention = 16384

// Stats counts network traffic, for the message-overhead comparisons of
// experiments E5/E6.
type Stats struct {
	mu        sync.Mutex
	Transfers int // individual point-to-point transfers on the wire
	Broadcast int // total-order broadcasts initiated
	Direct    int // direct (non-ordered) application messages
}

func (s *Stats) add(transfers, broadcasts, directs int) {
	s.mu.Lock()
	s.Transfers += transfers
	s.Broadcast += broadcasts
	s.Direct += directs
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() (transfers, broadcasts, directs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Transfers, s.Broadcast, s.Direct
}

// Group is one process group plus its client endpoints. In the simulator
// every member is hosted by the same Group; in a distributed deployment
// each process hosts a Group with one local member (or none, for pure
// client processes), wired together by a shared Transport implementation.
type Group struct {
	cfg     Config
	stats   Stats
	tr      Transport
	vclk    *vclock.Virtual // non-nil when Clock is a Virtual
	stamped bool            // stamped sequencing active (see Config.Tick)

	mu        sync.Mutex
	nodes     map[ids.ReplicaID]*Node
	localSet  map[ids.ReplicaID]bool
	clients   map[ids.ClientID]*ClientEndpoint
	crashed   map[ids.ReplicaID]bool
	crashedAt map[ids.ReplicaID]time.Duration
	isClosed  bool

	// Dynamic membership (epoch-based reconfiguration): members is the
	// current voter set, mutated only by ApplyMembership at activation
	// slots of the total order; learners receive the full sequenced
	// fan-out but carry no quorum weight. memberEpoch gates stale
	// applications; pairOrdered records that the current 2-voter set
	// resulted from an ordered removal (see takeoverQuorumMet).
	members     []ids.ReplicaID
	learners    map[ids.ReplicaID]bool
	memberEpoch uint64
	pairOrdered bool

	// Sequencing view: a monotone number bumped on every takeover, with
	// the member currently assigning total-order slots. Every stamped
	// envelope carries the view; receivers drop traffic from older views
	// and adopt newer ones (viewstamped-replication style).
	view         uint64
	seqID        ids.ReplicaID
	maxStamp     time.Duration              // highest stamp/horizon observed
	stampFloor   time.Duration              // new-view stamps must exceed this
	viewAcks     map[ids.ReplicaID]Envelope // view-sync replies being collected
	viewAckFor   uint64                     // ... for this proposed view
	onViewChange []func(view uint64, seq ids.ReplicaID)
	takingOver   bool

	// Wall-clock failure detection (stamped mode): the monitor marks the
	// sequencer crashed when no stamped traffic arrived for DetectTimeout.
	trafficMu      sync.Mutex
	lastSeqTraffic time.Time

	fwdMu      sync.Mutex
	fwdQ       []Envelope    // forwards awaiting the next sequencing tick
	tickParker vclock.Parker // wakes runTicks early (adaptive mode); set once by runTicks
	tickKick   atomic.Bool   // an early wake is pending (dedupes Unpark calls per tick)
	tickCur    atomic.Int64  // current adaptive park duration (ns); runTicks writes, forwards read

	recMu      sync.Mutex
	recovering bool
	recBuf     []Envelope // transport arrivals buffered during recovery

	// gapWedged marks a delivery gap whose slots' stamps the local
	// virtual clock has already passed: in-band healing would execute
	// them at the wrong instants (divergence), so only a full recovery
	// restart can fix it. Cleared on a view change (the takeover heal
	// may close the hole from the outside).
	gapWedged bool

	closed chan struct{}
}

// NewGroup creates the group and its locally hosted member nodes.
func NewGroup(cfg Config) *Group {
	if cfg.Clock == nil {
		panic("gcs: Config.Clock is required")
	}
	if len(cfg.Members) == 0 {
		panic("gcs: Config.Members must not be empty")
	}
	if cfg.DetectTimeout <= 0 {
		cfg.DetectTimeout = 50 * time.Millisecond
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 5 * time.Millisecond
	}
	if cfg.BatchThreshold <= 0 {
		cfg.BatchThreshold = 64
	}
	if cfg.AdaptiveTick {
		if cfg.MinTick <= 0 {
			cfg.MinTick = cfg.Tick / 4
		}
		if cfg.MinTick < 100*time.Microsecond {
			cfg.MinTick = 100 * time.Microsecond
		}
		if cfg.MinTick > cfg.Tick {
			cfg.MinTick = cfg.Tick
		}
		if cfg.MaxTick <= 0 {
			cfg.MaxTick = 4 * cfg.Tick
		}
		if cfg.MaxTick > cfg.DetectTimeout/4 {
			cfg.MaxTick = cfg.DetectTimeout / 4
		}
		if cfg.MaxTick < cfg.Tick {
			cfg.MaxTick = cfg.Tick
		}
	}
	members := append([]ids.ReplicaID(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	cfg.Members = members
	local := cfg.Local
	if local == nil {
		local = members
	}
	g := &Group{
		cfg:       cfg,
		nodes:     map[ids.ReplicaID]*Node{},
		localSet:  map[ids.ReplicaID]bool{},
		clients:   map[ids.ClientID]*ClientEndpoint{},
		crashed:   map[ids.ReplicaID]bool{},
		crashedAt: map[ids.ReplicaID]time.Duration{},
		members:   members,
		learners:  map[ids.ReplicaID]bool{},
		closed:    make(chan struct{}),
	}
	for _, id := range local {
		g.localSet[id] = true
	}
	for _, id := range cfg.Learners {
		if !containsID(members, id) {
			g.learners[id] = true
		}
	}
	if g.cfg.Logf == nil {
		g.cfg.Logf = func(string, ...interface{}) {}
	} else {
		// Prefix events with the hosted member (and group, when sharded)
		// so multi-process and multi-tenant logs interleave readably.
		self := "client"
		if len(local) == 1 {
			self = local[0].String()
		} else if len(local) > 1 {
			self = fmt.Sprintf("%v", local)
		}
		if cfg.Group != "" {
			self = cfg.Group + "/" + self
		}
		inner := g.cfg.Logf
		g.cfg.Logf = func(format string, args ...interface{}) {
			inner("["+self+"] "+format, args...)
		}
	}
	g.vclk, _ = cfg.Clock.(*vclock.Virtual)
	g.tr = cfg.Transport
	if g.tr == nil {
		g.tr = newMemTransport(g)
	}
	g.stamped = cfg.Transport != nil && g.vclk != nil
	g.recovering = cfg.Recovering && g.stamped
	g.seqID = members[0]
	g.lastSeqTraffic = time.Now()
	// Host a node for every local id — including a local learner whose id
	// is not (yet) in the voter set: a joining process participates in
	// delivery from the moment the cluster starts fanning out to it.
	for _, id := range local {
		n := newNode(g, id)
		g.nodes[id] = n
		g.tr.Bind(Origin{Replica: id}, func(envs ...Envelope) { g.inject(n.enqueue, envs...) })
	}
	if g.stamped && len(g.nodes) > 0 {
		// Every member-hosting process runs the tick loop; its body is a
		// no-op until this process hosts the current sequencer, so the
		// loop survives takeovers without being restarted.
		cfg.Clock.Go(g.runTicks)
		go g.runMonitor()
	}
	return g
}

// SetOnViewChange registers a callback invoked (from an unmanaged
// goroutine) after every view adoption. The replication layer uses it to
// move the nested-invocation performer role. Register before traffic
// flows; callbacks accumulate so every locally hosted replica can
// observe the change.
func (g *Group) SetOnViewChange(fn func(view uint64, seq ids.ReplicaID)) {
	g.mu.Lock()
	g.onViewChange = append(g.onViewChange, fn)
	g.mu.Unlock()
}

// CurrentView returns the sequencing view number and the member
// currently assigning slots in it.
func (g *Group) CurrentView() (uint64, ids.ReplicaID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.view, g.seqID
}

// Distributed reports whether the group runs in stamped (real-transport)
// mode rather than the in-memory simulator.
func (g *Group) Distributed() bool { return g.stamped }

// Close stops the sequencing tick loop (if any) and closes the
// transport. Simulated groups never need it.
func (g *Group) Close() error {
	g.mu.Lock()
	if !g.isClosed {
		g.isClosed = true
		close(g.closed)
	}
	g.mu.Unlock()
	return g.tr.Close()
}

func (g *Group) isLocal(id ids.ReplicaID) bool { return g.localSet[id] }

// seqRetention resolves Config.SeqRetention: 0 applies the default,
// negative disables trimming.
func (g *Group) seqRetention() int {
	if g.cfg.SeqRetention == 0 {
		return DefaultSeqRetention
	}
	if g.cfg.SeqRetention < 0 {
		return 0
	}
	return g.cfg.SeqRetention
}

// Stats exposes the traffic counters.
func (g *Group) Stats() *Stats { return &g.stats }

// Node returns the member with the given id.
func (g *Group) Node(id ids.ReplicaID) *Node {
	n := g.nodes[id]
	if n == nil {
		panic(fmt.Sprintf("gcs: unknown member %v", id))
	}
	return n
}

// Members returns the current voter ids in ascending order. The list
// starts as Config.Members and changes only at membership activation
// slots (ApplyMembership).
func (g *Group) Members() []ids.ReplicaID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]ids.ReplicaID(nil), g.members...)
}

// Learners returns the current learner ids in ascending order.
func (g *Group) Learners() []ids.ReplicaID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ids.ReplicaID, 0, len(g.learners))
	for id := range g.learners {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Recipients returns everyone the sequencer fans out to: voters plus
// learners, ascending. Learners see the full stream so they are
// bit-identical with the voters by their activation slot.
func (g *Group) Recipients() []ids.ReplicaID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := append([]ids.ReplicaID(nil), g.members...)
	if len(g.learners) > 0 {
		for id := range g.learners {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out
}

// MembershipEpoch returns the epoch of the last applied configuration
// (0 until the first runtime change activates).
func (g *Group) MembershipEpoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.memberEpoch
}

// AddLearner registers a joining member: it starts receiving sequenced
// traffic and horizon multicasts like a voter but carries no quorum
// weight and cannot be elected. The activation slot's ApplyMembership
// promotes it. Idempotent; a no-op for an existing voter.
func (g *Group) AddLearner(id ids.ReplicaID) {
	g.mu.Lock()
	already := g.learners[id] || containsID(g.members, id)
	if !already {
		g.learners[id] = true
	}
	// A learner may carry a stale crash mark (e.g. an id reused after an
	// earlier removal); clear it so fan-out reaches it.
	delete(g.crashed, id)
	delete(g.crashedAt, id)
	g.mu.Unlock()
	if !already {
		g.cfg.Logf("gcs: member %v added as learner", id)
	}
}

// ApplyMembership installs the voter set of a membership configuration
// that reached its activation slot. Every replica calls it at the same
// slot with the same arguments (the config rode the total order), so
// voter sets never diverge. ordered marks a deliberate (in-order)
// change as opposed to a seeded snapshot; it feeds the pairOrdered
// election exception. Stale epochs are ignored (returns false).
//
// A sequencer that is removed by the new config marks itself crashed
// and falls silent; survivors mark it crashed too (back-dated, no
// detection window for senders) and the lowest remaining voter then
// announces the next view through the normal objection-guarded
// takeover once the silence is observed.
func (g *Group) ApplyMembership(epoch uint64, voters []ids.ReplicaID, ordered bool) bool {
	vs := append([]ids.ReplicaID(nil), voters...)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	g.mu.Lock()
	if epoch <= g.memberEpoch || len(vs) == 0 {
		g.mu.Unlock()
		return false
	}
	old := g.members
	g.memberEpoch = epoch
	g.members = vs
	g.pairOrdered = ordered && len(vs) == 2
	now := g.cfg.Clock.Now()
	var removed []ids.ReplicaID
	for _, id := range old {
		if !containsID(vs, id) {
			removed = append(removed, id)
		}
	}
	for _, id := range vs {
		if g.learners[id] {
			delete(g.learners, id)
			// A promoted learner is by definition caught up (it delivered
			// this very activation slot); make sure no stale crash mark
			// hides it from the fan-out or the election scan.
			delete(g.crashed, id)
			delete(g.crashedAt, id)
		}
	}
	for _, id := range removed {
		delete(g.learners, id)
		if !g.crashed[id] {
			g.crashed[id] = true
			g.crashedAt[id] = now - g.cfg.DetectTimeout
		}
	}
	seqRemoved := !containsID(vs, g.seqID)
	g.mu.Unlock()
	g.cfg.Logf("gcs: membership epoch %d active: voters %v (removed %v)", epoch, vs, removed)
	if seqRemoved {
		// The sequencer left by configuration: restart the silence window
		// so the takeover candidate gets a full DetectTimeout after the
		// deposed sequencer's final multicast.
		g.touchSeqTraffic()
	}
	return true
}

func containsID(s []ids.ReplicaID, id ids.ReplicaID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// GroupTag returns the shard identity this group was configured with
// ("" in single-group deployments).
func (g *Group) GroupTag() string { return g.cfg.Group }

// NewClientEndpoint registers a client endpoint.
func (g *Group) NewClientEndpoint(id ids.ClientID) *ClientEndpoint {
	g.mu.Lock()
	if _, dup := g.clients[id]; dup {
		g.mu.Unlock()
		panic(fmt.Sprintf("gcs: duplicate client %v", id))
	}
	c := newClientEndpoint(g, id)
	g.clients[id] = c
	g.mu.Unlock()
	g.tr.Bind(Origin{Client: id, IsClient: true}, func(envs ...Envelope) { g.inject(c.enqueue, envs...) })
	return c
}

// sequencer returns the sequencer as *currently visible* to senders: a
// crashed sequencer keeps receiving (and dropping) traffic until the
// failure-detection timeout passes — that lost window is exactly the
// takeover cost experiment E5 measures.
func (g *Group) sequencer() ids.ReplicaID {
	now := g.cfg.Clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stamped {
		// Distributed mode: the view state machine is authoritative (the
		// wall-clock monitor and view-sync already encode detection).
		return g.seqID
	}
	for _, id := range g.members {
		if at, dead := g.crashedAt[id]; dead && now >= at+g.cfg.DetectTimeout {
			continue // failure already detected: skip
		}
		return id
	}
	return -1
}

// CurrentSequencer exposes the sender-visible sequencer (may be -1 when
// every member is crash-detected). The replication layer uses it to pick
// the nested-invocation performer in distributed mode.
func (g *Group) CurrentSequencer() ids.ReplicaID { return g.sequencer() }

// actualSequencerLocked ignores detection delay (internal liveness view).
func (g *Group) actualSequencerLocked() ids.ReplicaID {
	for _, id := range g.members {
		if !g.crashed[id] {
			return id
		}
	}
	return -1
}

// alive reports whether a member is still up.
func (g *Group) alive(id ids.ReplicaID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.crashed[id]
}

// Alive reports whether a member is still up (public view for the
// replication layer, e.g. to pick the nested-invocation performer).
func (g *Group) Alive(id ids.ReplicaID) bool { return g.alive(id) }

// LiveMembers returns the live member ids in ascending order.
func (g *Group) LiveMembers() []ids.ReplicaID {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []ids.ReplicaID
	for _, id := range g.members {
		if !g.crashed[id] {
			out = append(out, id)
		}
	}
	return out
}

// Crash stops a member: it no longer sends or receives anything. If the
// member was the sequencer, survivors fail over after DetectTimeout:
// they adopt the next sequencer and retransmit unsequenced forwards.
// Returns false if the member was already down.
func (g *Group) Crash(id ids.ReplicaID) bool {
	g.mu.Lock()
	if g.crashed[id] {
		g.mu.Unlock()
		return false
	}
	wasSequencer := g.actualSequencerLocked() == id
	g.crashed[id] = true
	g.crashedAt[id] = g.cfg.Clock.Now()
	newSeq := g.actualSequencerLocked()
	clients := make([]*ClientEndpoint, 0, len(g.clients))
	for _, c := range g.clients {
		clients = append(clients, c)
	}
	g.mu.Unlock()

	_ = clients
	if !wasSequencer || newSeq < 0 {
		return true
	}
	// Failure detection after the timeout: survivors adopt the next view
	// (recomputing the lowest live member at that instant, so cascading
	// crashes during the window resolve to the right sequencer) and
	// retransmit their unsequenced forwards.
	g.cfg.Clock.Go(func() {
		g.cfg.Clock.Sleep(g.cfg.DetectTimeout)
		g.detectFailover()
	})
	return true
}

// detectFailover recomputes the sequencer from current liveness and, if
// it moved, adopts the next view. The simulator schedules it one
// DetectTimeout after a sequencer crash; the distributed wall-clock
// monitor reaches the same state machine through leadTakeover.
func (g *Group) detectFailover() {
	g.mu.Lock()
	s := g.actualSequencerLocked()
	if s < 0 || s == g.seqID {
		g.mu.Unlock()
		return
	}
	v := g.view + 1
	g.mu.Unlock()
	g.adoptView(v, s)
}

// adoptView installs view v with sequencer s, marks every member below s
// as crash-detected, retransmits unsequenced forwards from local nodes
// and clients, and fires the view-change callback. Stale or duplicate
// views are ignored (returns false).
func (g *Group) adoptView(v uint64, s ids.ReplicaID) bool {
	g.mu.Lock()
	if v <= g.view {
		g.mu.Unlock()
		return false
	}
	g.view = v
	g.seqID = s
	g.gapWedged = false // the new view's takeover heal may close the hole
	now := g.cfg.Clock.Now()
	for _, id := range g.members {
		if id < s && !g.crashed[id] {
			g.crashed[id] = true
			// Back-date so the sender-visible scan skips it immediately.
			g.crashedAt[id] = now - g.cfg.DetectTimeout
		}
	}
	var nodes []*Node
	for _, n := range g.nodes {
		if !g.crashed[n.id] {
			nodes = append(nodes, n)
		}
	}
	clients := make([]*ClientEndpoint, 0, len(g.clients))
	for _, c := range g.clients {
		clients = append(clients, c)
	}
	cbs := make([]func(uint64, ids.ReplicaID), len(g.onViewChange))
	copy(cbs, g.onViewChange)
	g.mu.Unlock()
	g.cfg.Logf("gcs: adopted view %d, sequencer %v", v, s)
	g.touchSeqTraffic()
	for _, n := range nodes {
		n.retransmitPending()
	}
	for _, c := range clients {
		c.retransmitPending()
	}
	for _, cb := range cbs {
		cb(v, s)
	}
	return true
}

// AdoptView installs an externally learned view (public entry for
// processes that receive no heartbeats — the load generator polls the
// members' Status and feeds view changes here so its clients re-route
// pending requests to the new sequencer).
func (g *Group) AdoptView(view uint64, seq ids.ReplicaID) { g.adoptView(view, seq) }

// SeedView installs the view a rejoining replica learned from its
// recovery donor before live traffic is replayed: members below the
// current sequencer are marked crash-detected (excluding locally hosted
// ones — the rejoining old sequencer itself stays alive as a follower).
func (g *Group) SeedView(view uint64, seq ids.ReplicaID) {
	g.mu.Lock()
	if view > g.view || (view == g.view && seq > g.seqID) {
		g.view = view
		g.seqID = seq
		now := g.cfg.Clock.Now()
		for _, id := range g.members {
			if id < seq && !g.crashed[id] && !g.localSet[id] {
				g.crashed[id] = true
				g.crashedAt[id] = now - g.cfg.DetectTimeout
			}
		}
	}
	g.mu.Unlock()
	g.touchSeqTraffic()
}

// Revive unmarks a crash-detected member after it reconnected (the
// transport reports its hello). Without it the sequencer would exclude
// the rejoined member from sequenced multicasts forever.
func (g *Group) Revive(id ids.ReplicaID) {
	g.mu.Lock()
	was := g.crashed[id]
	delete(g.crashed, id)
	delete(g.crashedAt, id)
	g.mu.Unlock()
	if was {
		g.cfg.Logf("gcs: member %v revived", id)
	}
}

// touchSeqTraffic resets the wall-clock staleness window used by the
// failure monitor.
func (g *Group) touchSeqTraffic() {
	g.trafficMu.Lock()
	g.lastSeqTraffic = time.Now()
	g.trafficMu.Unlock()
}

// seqTrafficAge returns the wall time since the last sequencer sign of
// life.
func (g *Group) seqTrafficAge() time.Duration {
	g.trafficMu.Lock()
	defer g.trafficMu.Unlock()
	return time.Since(g.lastSeqTraffic)
}

// runMonitor is the distributed failure detector: a wall-clock loop
// (stamped processes host real goroutines freely — only managed ones
// obey the virtual clock) that watches for sequencer silence. Heartbeats
// arrive every Tick, so DetectTimeout without any stamped traffic means
// the sequencer (or the candidate expected to replace it) is gone; the
// lowest live member then leads a takeover, everyone else widens the
// window and waits for the new view to announce itself.
func (g *Group) runMonitor() {
	interval := g.cfg.DetectTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var gapNext uint64     // frontier last seen stuck below highestSeen
	var gapSince time.Time // when it was first seen stuck there
	for {
		select {
		case <-g.closed:
			return
		case <-ticker.C:
		}
		if g.Recovering() {
			g.touchSeqTraffic()
			continue
		}
		g.mu.Lock()
		seq := g.seqID
		hostingSeq := g.localSet[seq]
		busy := g.takingOver
		g.mu.Unlock()
		if hostingSeq || busy {
			g.touchSeqTraffic()
			continue
		}
		g.healDeliveryGap(&gapNext, &gapSince)
		if g.seqTrafficAge() < g.cfg.DetectTimeout {
			continue
		}
		// The sequencer is silent: declare it crashed and line up behind
		// the lowest live member. If that is us, run the takeover; if
		// not, restart the window so the candidate gets its own
		// DetectTimeout to announce the new view before we cascade past
		// it.
		g.mu.Lock()
		if !g.crashed[seq] {
			g.crashed[seq] = true
			g.crashedAt[seq] = g.cfg.Clock.Now() - g.cfg.DetectTimeout
		}
		cand := g.actualSequencerLocked()
		lead := cand >= 0 && g.localSet[cand]
		if lead {
			g.takingOver = true
		}
		curView := g.view
		g.mu.Unlock()
		g.cfg.Logf("gcs: sequencer %v silent for %v (view %d): candidate %v (lead=%v)",
			seq, g.cfg.DetectTimeout, curView, cand, lead)
		g.touchSeqTraffic()
		if lead {
			g.leadTakeover(cand)
			g.mu.Lock()
			g.takingOver = false
			g.mu.Unlock()
		}
	}
}

// healDeliveryGap closes a follower's delivery hole outside a takeover.
// A member partitioned across a view change holds slots ABOVE a gap the
// takeover heal never closed (it was unreachable when the new sequencer
// collected frontiers), so its frontier wedges below highestSeen forever
// while the cluster moves on. When the frontier sits still below
// highestSeen for a full detect window — ordinary in-flight slots clear
// within a tick — the monitor fetches the missing range from a live
// peer and injects it through the stamped path, exactly like the
// takeover self-heal. gapNext/gapSince persist across monitor ticks to
// carry the stall detection.
func (g *Group) healDeliveryGap(gapNext *uint64, gapSince *time.Time) {
	if g.cfg.FetchGap == nil || !g.stamped {
		return
	}
	g.mu.Lock()
	wedged := g.gapWedged
	var self ids.ReplicaID = -1
	var n *Node
	for id, node := range g.nodes {
		if self < 0 || id < self {
			self, n = id, node
		}
	}
	seq := g.seqID
	var donors []ids.ReplicaID
	for _, id := range g.members {
		if id != self && !g.crashed[id] && !g.localSet[id] {
			donors = append(donors, id)
		}
	}
	g.mu.Unlock()
	if wedged {
		return
	}
	if n == nil || len(donors) == 0 {
		return
	}
	next, highest := n.Frontier()
	if highest < next {
		*gapNext = 0
		return
	}
	if next != *gapNext {
		*gapNext, *gapSince = next, time.Now()
		return
	}
	if time.Since(*gapSince) < g.cfg.DetectTimeout {
		return
	}
	// Prefer the sequencer: its retention window is authoritative. A
	// trimmed range comes back empty and the replica stays wedged — that
	// is the pre-existing "restart with -recover" case, now logged.
	donor := donors[0]
	for _, id := range donors {
		if id == seq {
			donor = id
			break
		}
	}
	envs := g.cfg.FetchGap(donor, next, int(highest-next)+1)
	switch {
	case len(envs) > 0 && envs[0].Stamp > 0 && envs[0].Stamp <= g.vclk.Now():
		// The local clock already passed the missing slots' stamps (a
		// long partition, typically across a view change): injecting now
		// would execute them at the wrong virtual instants — divergence.
		// Only a full recovery restart replays them correctly.
		g.mu.Lock()
		g.gapWedged = true
		g.mu.Unlock()
		g.cfg.Logf("gcs: %v delivery gap [%d..%d] predates the local virtual clock (stamp %v <= now %v); "+
			"in-band heal unsafe, restart with -recover", self, next, highest, envs[0].Stamp, g.vclk.Now())
	case len(envs) > 0:
		g.cfg.Logf("gcs: %v healing delivery gap [%d..%d]: fetched %d slots from %v",
			self, next, highest, len(envs), donor)
		g.inject(n.enqueue, envs...)
	default:
		g.cfg.Logf("gcs: %v delivery gap [%d..%d] not healable from %v (trimmed?); restart with -recover",
			self, next, highest, donor)
	}
	*gapSince = time.Now() // re-arm: retry after another full window
}

// leadTakeover promotes the local member self to sequencer of the next
// view. One round of view-sync collects every live peer's delivery
// frontier and highest promised stamp; slot assignment resumes above the
// highest slot any survivor saw (so the total order cannot fork) and new
// stamps start above every previously published horizon (so no
// follower's clock has passed them). Survivors that missed the dead
// sequencer's final multicasts are healed from the best frontier before
// the new view's traffic reaches them — per-link FIFO then guarantees
// they observe the missing slots first.
func (g *Group) leadTakeover(self ids.ReplicaID) {
	g.mu.Lock()
	v := g.view + 1
	deposed := g.seqID
	g.viewAcks = map[ids.ReplicaID]Envelope{}
	g.viewAckFor = v
	var peers, required []ids.ReplicaID
	for _, id := range g.members {
		if g.localSet[id] {
			continue
		}
		// Probe every remote member — including those believed crashed.
		// A falsely-accused sequencer (our inbound link went quiet, not
		// the sequencer itself) answers with an objection and the
		// takeover aborts instead of forking the order. Only members
		// still believed live gate the wait, so a genuinely dead peer
		// costs nothing.
		peers = append(peers, id)
		if !g.crashed[id] {
			required = append(required, id)
		}
	}
	g.mu.Unlock()
	for _, id := range peers {
		g.transfer(fmt.Sprintf("vr%v>%v", self, id), Origin{Replica: id},
			Envelope{Kind: EnvViewReq, View: v, From: Origin{Replica: self}})
	}
	deadline := time.Now().Add(g.cfg.DetectTimeout)
	for {
		g.mu.Lock()
		got := 0
		for _, id := range required {
			if _, ok := g.viewAcks[id]; ok {
				got++
			}
		}
		objected := viewObjection(g.viewAcks)
		g.mu.Unlock()
		if objected || got >= len(required) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	n := g.nodes[self]
	next, maxSeen := n.Frontier()
	g.mu.Lock()
	maxStamp := g.maxStamp
	acks := g.viewAcks
	g.viewAcks = nil
	g.mu.Unlock()

	// Abort on objection: some peer (possibly the accused sequencer
	// itself) still observes live traffic from the current view. Our own
	// silence was a link or timing artifact — revive the sequencer and
	// give the detector a fresh window rather than splitting the order.
	if viewObjection(acks) {
		g.cfg.Logf("gcs: %v aborting view-%d takeover: a peer still observes sequencer %v alive",
			self, v, deposed)
		g.Revive(deposed)
		g.touchSeqTraffic()
		return
	}
	// Quorum over the voter set active now (learners and removed members
	// carry no weight); see takeoverQuorumMet for the rule and the
	// ordered-pair exception.
	g.mu.Lock()
	localVoters := 0
	for id := range g.nodes {
		if containsID(g.members, id) && !g.crashed[id] {
			localVoters++
		}
	}
	voterCount := len(g.members)
	pairOrdered := g.pairOrdered
	g.mu.Unlock()
	if !takeoverQuorumMet(localVoters, len(acks), voterCount, pairOrdered) {
		g.cfg.Logf("gcs: %v aborting view-%d takeover: %d acks is short of a majority of %d",
			self, v, len(acks), voterCount)
		g.Revive(deposed)
		g.touchSeqTraffic()
		return
	}

	bestDonor, bestFrontier := ids.ReplicaID(-1), maxSeen
	for id, a := range acks {
		if a.Seq > maxSeen {
			maxSeen = a.Seq
		}
		if a.Stamp > maxStamp {
			maxStamp = a.Stamp
		}
		if a.Seq > bestFrontier {
			bestFrontier, bestDonor = a.Seq, id
		}
	}

	// Self-heal: fetch slots we missed from the most advanced survivor
	// and inject them through the normal stamped path *before* opening
	// the horizon — their stamps lie above our current horizon, so they
	// replay at their original virtual instants.
	if bestDonor >= 0 && next <= maxSeen && g.cfg.FetchGap != nil {
		if envs := g.cfg.FetchGap(bestDonor, next, int(maxSeen-next)+1); len(envs) > 0 {
			g.inject(n.enqueue, envs...)
		}
	}

	// Heal lagging peers from our own sequenced log: every survivor holds
	// a FIFO prefix of the dead sequencer's stream, so re-multicasting
	// our tail (original stamps, pre-takeover view) ahead of the first
	// new-view heartbeat closes their gaps in order.
	for id, a := range acks {
		peerNext := a.UID // acks carry the peer's frontier in UID
		if peerNext > maxSeen {
			continue
		}
		envs, _, ok := n.SequencedTail(peerNext, int(maxSeen-peerNext)+1)
		if !ok {
			continue
		}
		for _, e := range envs {
			g.transfer(fmt.Sprintf("seq%v>%v", self, id), Origin{Replica: id}, e)
		}
	}

	n.raiseHighestSeen(maxSeen)
	g.mu.Lock()
	if f := maxStamp + g.cfg.Budget; f > g.stampFloor {
		g.stampFloor = f
	}
	g.mu.Unlock()
	g.vclk.PromoteLeader()
	g.cfg.Logf("gcs: %v taking over as view-%d sequencer: %d/%d acks, resume past slot %d, stamp floor %v",
		self, v, len(acks), len(peers), maxSeen, maxStamp+g.cfg.Budget)
	g.adoptView(v, self)
}

// takeoverQuorumMet decides whether a takeover candidate may install a
// new view: its local live voters plus the collected acks must cover a
// majority of the configured voter set. A candidate that heard from
// nobody cannot tell "they all died" from "my inbound links are down" —
// and in the latter case assigning slots would fork the order the
// silent majority still extends.
//
// The one exception is a 2-voter remainder produced by an ordered
// removal (pairOrdered): the survivor may elect alone. The config
// itself was majority-agreed in the total order before the set shrank,
// the objection probe still runs first (a reachable peer that observes
// the old view alive aborts the takeover), and the operator who shrank
// the cluster to two deliberately traded partition tolerance for
// availability. A static 2-member group, or one whose peer merely
// crash-detected out of a larger config, keeps the stall — safety over
// liveness.
func takeoverQuorumMet(localVoters, acks, voters int, pairOrdered bool) bool {
	if localVoters+acks >= voters/2+1 {
		return true
	}
	return pairOrdered && voters == 2 && localVoters >= 1
}

// handleViewReq answers a takeover candidate's view-sync probe with this
// process's delivery frontier (UID), highest slot seen (Seq) and highest
// promised stamp (Stamp). Handled outside the virtual clock: the clock
// may be stalled at the dead sequencer's last horizon.
//
// When this process still observes the current view alive — it hosts the
// accused sequencer itself, saw its traffic within DetectTimeout, or
// already sits in a view at least as new as the proposal — the ack
// carries an objection (Origin set to the responder, see viewObjection)
// and the candidate aborts: its silence was a link artifact, and a
// takeover that excluded a live sequencer would fork the total order.
func (g *Group) handleViewReq(e Envelope) {
	age := g.seqTrafficAge()
	// A recovering process has no live observation of the sequencer: its
	// traffic is buffered unseen and the monitor self-touches seqTraffic
	// to keep it from leading takeovers. Letting it object would wedge
	// the cluster — its own catch-up needs the very election it vetoes —
	// so it only acks (still countable toward the candidate's quorum).
	recovering := g.Recovering()
	g.mu.Lock()
	var self ids.ReplicaID = -1
	var n *Node
	for id, node := range g.nodes {
		if self < 0 || id < self {
			self, n = id, node
		}
	}
	maxStamp := g.maxStamp
	object := e.View <= g.view ||
		(!recovering &&
			(g.localSet[g.seqID] ||
				(age < g.cfg.DetectTimeout && !g.crashed[g.seqID])))
	g.mu.Unlock()
	if n == nil {
		return
	}
	ack := Envelope{
		Kind: EnvViewAck,
		View: e.View,
		From: Origin{Replica: self},
	}
	if object {
		ack.Origin = Origin{Replica: self}
		g.transfer(fmt.Sprintf("va%v>%v", self, e.From.Replica), e.From, ack)
		return
	}
	// A takeover is in progress: give the candidate its window.
	g.touchSeqTraffic()
	next, highest := n.Frontier()
	ack.Seq, ack.UID, ack.Stamp = highest, next, maxStamp
	g.transfer(fmt.Sprintf("va%v>%v", self, e.From.Replica), e.From, ack)
}

// viewObjection reports whether any view-sync ack objects to the
// takeover: an objecting responder sets the otherwise-unused Origin
// field to its own (non-zero) replica id.
func viewObjection(acks map[ids.ReplicaID]Envelope) bool {
	for _, a := range acks {
		if a.Origin.Replica != 0 {
			return true
		}
	}
	return false
}

func (g *Group) handleViewAck(e Envelope) {
	g.mu.Lock()
	if g.viewAcks != nil && e.View == g.viewAckFor {
		g.viewAcks[e.From.Replica] = e
	}
	g.mu.Unlock()
}

// observeView filters a stamped envelope against the view state: traffic
// from older views is dropped (a deposed sequencer's zombie multicasts
// must not fork the order), newer views are adopted on the spot.
func (g *Group) observeView(e Envelope) bool {
	g.mu.Lock()
	cur := g.view
	g.mu.Unlock()
	if e.View < cur {
		// Stale-view traffic from a live member means it missed the view
		// change — typically a sequencer that stalled through its own
		// deposition and whose objection lost the race. It was marked
		// crashed at detection, which excludes it from the new view's
		// horizon multicasts, so without this revive it would never learn
		// the new view and the group would split permanently. Drop the
		// frame, revive the sender: the next horizon announces the view
		// and the straggler stands down into it.
		if id := e.From.Replica; id > 0 && !e.From.IsClient {
			g.Revive(id)
		}
		return false
	}
	if e.View > cur {
		from := e.From.Replica
		if !g.adoptView(e.View, from) {
			g.mu.Lock()
			cur = g.view
			g.mu.Unlock()
			if e.View < cur {
				return false
			}
		}
	}
	g.touchSeqTraffic()
	return true
}

// EnvKind classifies an envelope on the wire.
type EnvKind int

const (
	EnvForward   EnvKind = iota // needs sequencing (to the sequencer)
	EnvSequenced                // sequenced multicast (to all members)
	EnvDirect                   // application point-to-point
	EnvHorizon                  // time-horizon heartbeat (stamped mode)
	EnvViewReq                  // takeover view-sync probe (candidate → survivors)
	EnvViewAck                  // view-sync reply: frontier + highest stamp seen
)

// Envelope is the transport-level unit of transfer. The wire codec in
// internal/wire serializes exactly these fields.
type Envelope struct {
	Kind   EnvKind
	Seq    uint64 // total-order slot (sequenced envelopes)
	View   uint64 // sequencing view the envelope was produced in
	Origin Origin // broadcast originator
	UID    uint64 // per-origin unique id (duplicate suppression)
	From   Origin // transport-level sender (direct messages)
	To     Origin // destination endpoint
	// Stamp is the virtual delivery deadline assigned by the sequencer
	// in stamped mode (zero in the simulator): receivers inject the
	// envelope into their virtual timeline at exactly this instant. On
	// an EnvHorizon heartbeat it is a promise that no later sequenced
	// envelope will carry a smaller stamp.
	Stamp time.Duration
	// Class is the conflict class assigned by the sequencer's
	// Config.Classify when the slot was assigned (sequenced envelopes
	// only; 0 = global class). Wire protocol v5 carries it.
	Class   uint32
	Payload Payload
}

// transfer puts env on the named FIFO link toward to, counting it.
func (g *Group) transfer(key string, to Origin, env Envelope) {
	g.stats.add(1, 0, 0)
	env.To = to
	g.tr.Send(key, to, env)
}

// transferBatch sends envs as one atomic unit when the transport
// supports batching (falling back to individual sends otherwise).
func (g *Group) transferBatch(key string, to Origin, envs []Envelope) {
	g.stats.add(len(envs), 0, 0)
	for i := range envs {
		envs[i].To = to
	}
	if bs, ok := g.tr.(BatchSender); ok {
		bs.SendBatch(key, to, envs)
		return
	}
	for _, e := range envs {
		g.tr.Send(key, to, e)
	}
}

// Delivery-order ranks for stamped-mode timers (same band as links).
var (
	injectOrder = linkOrderBase + fnv32("inject")
	tickOrder   = linkOrderBase + fnv32("tick")
)

// inject routes envelopes arriving from the transport into the local
// endpoint. In the simulator this is a straight pass-through; in stamped
// mode sequenced envelopes are scheduled at their stamped virtual
// instant, forwards are queued for the next sequencing tick, and
// horizon heartbeats raise the clock horizon.
func (g *Group) inject(enqueue func(Envelope), envs ...Envelope) {
	if !g.stamped {
		for _, e := range envs {
			enqueue(e)
		}
		return
	}
	var fwds []Envelope
	for _, e := range envs {
		// View-sync runs outside both the virtual clock (which may be
		// stalled at the dead sequencer's last horizon) and recovery
		// buffering (a recovering donor can still report its frontier).
		switch e.Kind {
		case EnvViewReq:
			g.handleViewReq(e)
			continue
		case EnvViewAck:
			g.handleViewAck(e)
			continue
		}
		// Recovery mode: buffer everything else. Injecting live sequenced
		// traffic now would advance the virtual clock past the stamps of
		// the tail we are about to fetch, executing replayed requests at
		// the wrong virtual instants — divergence. Direct messages (LSA
		// decisions, replies) are buffered too, not dropped: the transport
		// already acked them, so a drop would be permanent.
		g.recMu.Lock()
		if g.recovering {
			g.recBuf = append(g.recBuf, e)
			g.recMu.Unlock()
			continue
		}
		g.recMu.Unlock()
		switch {
		case e.Kind == EnvHorizon:
			if !g.observeView(e) {
				continue // deposed sequencer's zombie heartbeat
			}
			g.noteStamp(e.Stamp)
			g.vclk.SetHorizon(e.Stamp)
		case e.Kind == EnvForward:
			fwds = append(fwds, e)
		case e.Kind == EnvSequenced && e.Stamp > 0:
			if !g.observeView(e) {
				continue // stale view: the order moved on without this slot
			}
			env := e
			g.noteStamp(env.Stamp)
			// Rank same-stamp injections by slot: a tick batch shares one
			// stamp, and ScheduleAt's goroutines park in racy real-time
			// order — without the slot rank, same-instant delivery order
			// (and with it admission-order-sensitive schedulers like PDS)
			// would differ across replicas.
			g.vclk.ScheduleAt(env.Stamp, injectOrder+env.Seq, "gcs inject", func() { enqueue(env) })
			g.vclk.SetHorizon(env.Stamp)
		default:
			enqueue(e)
		}
	}
	if len(fwds) > 0 {
		g.fwdMu.Lock()
		g.fwdQ = append(g.fwdQ, fwds...)
		qlen := len(g.fwdQ)
		parker := g.tickParker
		g.fwdMu.Unlock()
		// Adaptive mode: a queue that crossed the batch threshold drains
		// now instead of waiting out the tick, and an arrival into an
		// EMPTY queue while the tick is idle-stretched past the base Tick
		// drains immediately too — otherwise a lone low-rate request
		// would sit out a stretched park and adaptive would be slower
		// than the fixed tick exactly where it should be faster. The CAS
		// dedupes wakeups (one per tick; runTicks re-arms it), and the
		// hosting check runs only on a crossing so the per-forward hot
		// path stays a queue append.
		kick := qlen >= g.cfg.BatchThreshold ||
			(qlen == len(fwds) && time.Duration(g.tickCur.Load()) > g.cfg.Tick)
		if g.cfg.AdaptiveTick && parker != nil && kick &&
			g.tickKick.CompareAndSwap(false, true) && g.hostsSequencer() {
			parker.Unpark()
		}
	}
}

// hostsSequencer reports whether this process hosts the current
// sequencer (i.e. its tick loop is the one assigning slots).
func (g *Group) hostsSequencer() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.localSet[g.seqID]
}

// noteStamp records the highest stamp/horizon this process has observed;
// view-sync reports it so a new sequencer's stamps start above every
// instant any survivor's clock may already have reached.
func (g *Group) noteStamp(st time.Duration) {
	g.mu.Lock()
	if st > g.maxStamp {
		g.maxStamp = st
	}
	g.mu.Unlock()
}

// BufferedSeqRange reports the sequenced envelopes buffered while the
// group is in recovery mode: the lowest and highest slot seen and their
// count. The recovery orchestrator uses it to decide when the fetched
// tail is contiguous with the live stream.
func (g *Group) BufferedSeqRange() (min, max uint64, count int) {
	g.recMu.Lock()
	defer g.recMu.Unlock()
	for _, e := range g.recBuf {
		if e.Kind != EnvSequenced {
			continue
		}
		if count == 0 || e.Seq < min {
			min = e.Seq
		}
		if e.Seq > max {
			max = e.Seq
		}
		count++
	}
	return min, max, count
}

// Recovering reports whether the group is still buffering (recovery
// mode).
func (g *Group) Recovering() bool {
	g.recMu.Lock()
	defer g.recMu.Unlock()
	return g.recovering
}

// ResumeLive ends recovery mode for the local member node: the fetched
// sequenced tail and the live traffic buffered since startup are merged
// (deduplicated by slot, ascending) and injected at their original
// virtual stamps, so the replayed schedule is bit-identical to the one
// the survivors executed. The horizon is raised to the highest stamp
// first — that anchors the paced clock's wall offset at roughly
// cluster-now, so the whole tail is wall-overdue and replays at full
// speed instead of in real time.
//
// next is the first total-order slot the node still has to deliver
// (checkpoint seq + 1). Tail entries and buffered slots below it are
// discarded.
func (g *Group) ResumeLive(next uint64, tail []Envelope) {
	g.recMu.Lock()
	defer g.recMu.Unlock()
	if !g.recovering {
		return
	}
	g.recovering = false
	buf := g.recBuf
	g.recBuf = nil

	var node *Node
	for _, n := range g.nodes {
		node = n // recovery mode hosts exactly one local member
	}
	if node == nil {
		return
	}

	var maxStamp time.Duration
	seqs := map[uint64]Envelope{}
	var order []uint64
	var others []Envelope
	classify := func(e Envelope) {
		switch {
		case e.Kind == EnvHorizon:
			if e.Stamp > maxStamp {
				maxStamp = e.Stamp
			}
		case e.Kind == EnvSequenced:
			if e.Seq < next {
				return
			}
			if _, dup := seqs[e.Seq]; dup {
				return
			}
			seqs[e.Seq] = e
			order = append(order, e.Seq)
			if e.Stamp > maxStamp {
				maxStamp = e.Stamp
			}
		default:
			// Directs (LSA decisions, replies) keep their arrival order;
			// stray forwards re-route to the sequencer via handleForward.
			others = append(others, e)
		}
	}
	for _, e := range tail {
		classify(e)
	}
	for _, e := range buf {
		classify(e)
	}
	sortUint64(order)

	if maxStamp > 0 {
		g.noteStamp(maxStamp)
		g.vclk.SetHorizon(maxStamp)
	}
	node.resumeAt(next)
	// Ascending slot order, with the slot as the same-instant rank:
	// same-stamp envelopes must deliver in sequencing order even though
	// ScheduleAt's goroutines park in racy real-time order.
	for _, s := range order {
		env := seqs[s]
		if env.Stamp > 0 {
			env := env
			g.vclk.ScheduleAt(env.Stamp, injectOrder+env.Seq, "gcs inject", func() { node.enqueue(env) })
		} else {
			node.enqueue(env)
		}
	}
	for _, e := range others {
		node.enqueue(e)
	}
}

// runTicks is the stamped-mode sequencing loop, run by every member-
// hosting process: its body is a no-op unless this process currently
// hosts the sequencer, so a takeover activates it without restarting
// anything. Each tick assigns total-order slots to the forwards
// accumulated since the previous tick, stamping them with a shared
// virtual delivery deadline, and multicasts a horizon heartbeat (with
// the current view) so follower clocks keep flowing through idle
// periods. With the fixed tick (AdaptiveTick off) tick instants are
// exact virtual multiples of Config.Tick, so the stamps a given forward
// sequence receives are reproducible; adaptive mode trades that for a
// load-responsive drain (see Config.AdaptiveTick) without touching the
// slot order or stamp monotonicity. After a takeover the stamp floor
// keeps new deadlines above every horizon the previous sequencer
// published.
//
// Group commit (the default): a tick's sequenced envelopes — which all
// share one stamp and deliver in slot order — travel as a single
// multi-envelope frame per member, with the horizon heartbeat riding in
// the same frame, so one syscall and one frame header carry the whole
// tick's decisions. Config.NoGroupCommit reverts to per-envelope frames.
func (g *Group) runTicks() {
	parker := g.vclk.NewOrderedParker("gcs tick", tickOrder)
	g.fwdMu.Lock()
	g.tickParker = parker
	g.fwdMu.Unlock()
	tick := g.cfg.Tick
	for {
		g.tickCur.Store(int64(tick))
		parker.ParkTimeout(tick)
		g.tickKick.Store(false)
		select {
		case <-g.closed:
			return
		default:
		}
		if g.Recovering() {
			continue
		}
		g.mu.Lock()
		seqID, view, floor := g.seqID, g.view, g.stampFloor
		n := g.nodes[seqID]
		if n != nil && g.crashed[seqID] {
			// An ordered removal took this process's member out of the
			// voter set while it was the sequencer: fall silent so the
			// survivors' failure detector hands the role to the lowest
			// remaining voter.
			n = nil
		}
		g.mu.Unlock()
		if n == nil {
			tick = g.nextTick(tick, 0)
			continue // not hosting the sequencer (yet)
		}
		g.fwdMu.Lock()
		batch := g.fwdQ
		g.fwdQ = nil
		g.fwdMu.Unlock()
		deadline := g.cfg.Clock.Now() + g.cfg.Budget
		if deadline < floor {
			deadline = floor
		}
		if g.cfg.NoGroupCommit {
			for _, env := range batch {
				n.sequence(env, deadline)
			}
			for _, id := range g.Recipients() {
				if g.isLocal(id) || !g.alive(id) {
					continue
				}
				g.transfer(fmt.Sprintf("hz%v>%v", seqID, id), Origin{Replica: id},
					Envelope{Kind: EnvHorizon, View: view, From: Origin{Replica: seqID}, Stamp: deadline})
			}
			tick = g.nextTick(tick, len(batch))
			continue
		}
		seqEnvs := n.sequenceBatch(batch, deadline, view)
		hz := Envelope{Kind: EnvHorizon, View: view, From: Origin{Replica: seqID}, Stamp: deadline}
		for _, id := range g.Recipients() {
			if !g.alive(id) {
				continue
			}
			if g.isLocal(id) {
				// Self-delivery: no horizon needed (the sequenced stamps
				// raise the local horizon on injection, matching the
				// per-envelope path).
				if len(seqEnvs) > 0 {
					g.transferBatch(fmt.Sprintf("seq%v>%v", seqID, id), Origin{Replica: id},
						append([]Envelope(nil), seqEnvs...))
				}
				continue
			}
			// transferBatch stamps To in place, so each member gets its own
			// copy of the envelope slice.
			msgs := make([]Envelope, 0, len(seqEnvs)+1)
			msgs = append(msgs, seqEnvs...)
			msgs = append(msgs, hz)
			g.transferBatch(fmt.Sprintf("seq%v>%v", seqID, id), Origin{Replica: id}, msgs)
		}
		tick = g.nextTick(tick, len(batch))
	}
}

// nextTick applies the adaptive sizing policy given how many forwards
// the finished tick drained: a threshold-sized batch means saturation
// (drain fast), a non-empty drain holds the nominal tick, and idle
// ticks stretch geometrically toward MaxTick.
func (g *Group) nextTick(cur time.Duration, drained int) time.Duration {
	if !g.cfg.AdaptiveTick {
		return g.cfg.Tick
	}
	switch {
	case drained >= g.cfg.BatchThreshold:
		return g.cfg.MinTick
	case drained > 0:
		return g.cfg.Tick
	default:
		next := cur * 2
		if next > g.cfg.MaxTick {
			next = g.cfg.MaxTick
		}
		if next < g.cfg.Tick {
			next = g.cfg.Tick
		}
		return next
	}
}
