// Queue: condition variables across replicas.
//
// One of the paper's main arguments for deterministic *multithreading*
// (rather than sequential execution) is that it "enables the object
// programmer to use condition variables for coordination between
// multiple invocations": under SEQ, a consumer waiting for an empty
// queue would block the whole replica forever, because the producer
// that should notify it can never run.
//
// This example replicates a bounded queue with blocking put/take. The
// consumers arrive first and wait; the producers wake them. The same
// deterministic schedule plays out on all three replicas, so their
// queue states stay identical.
//
// Run with: go run ./examples/queue
package main

import (
	"fmt"
	"log"
	"time"

	"detmt"
)

const queueSource = `
object BoundedQueue {
    monitor lock;
    field size;
    field capacity;
    field produced;
    field consumed;

    method init(cap) {
        sync (lock) {
            capacity = cap;
        }
    }

    method put(item) {
        sync (lock) {
            while (size >= capacity) {
                wait(lock);
            }
            size = size + 1;
            produced = produced + item;
            notifyall(lock);
        }
    }

    method take() {
        var got = 0;
        sync (lock) {
            while (size == 0) {
                wait(lock);
            }
            size = size - 1;
            consumed = consumed + 1;
            got = size;
            notifyall(lock);
        }
        return got;
    }
}
`

func main() {
	cluster, err := detmt.NewCluster(detmt.Options{
		Source:    queueSource,
		Scheduler: detmt.MAT, // wait/notify needs real multithreading
	})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Run(func(s *detmt.Session) {
		admin := s.NewClient(100)
		if _, _, err := admin.Invoke("init", int64(2)); err != nil {
			log.Fatalf("init: %v", err)
		}

		join := s.Join()
		// Consumers first: they will block in wait() until items arrive.
		for ci := 0; ci < 3; ci++ {
			client := s.NewClient(ci + 1)
			join.Go(func() {
				if _, _, err := client.Invoke("take"); err != nil {
					log.Fatalf("take: %v", err)
				}
			})
		}
		// Give the consumers time to park in their condition wait.
		s.Sleep(5 * time.Millisecond)

		// Producers wake them; capacity 2 also forces one producer to
		// wait for a consumer in the opposite direction.
		for pi := 0; pi < 3; pi++ {
			client := s.NewClient(pi + 10)
			item := int64(pi + 1)
			join.Go(func() {
				if _, _, err := client.Invoke("put", item); err != nil {
					log.Fatalf("put: %v", err)
				}
			})
		}
		join.Wait()
	})

	for id := 1; id <= 3; id++ {
		st := cluster.State(id)
		fmt.Printf("replica %d: size=%v produced=%v consumed=%v\n",
			id, st["size"], st["produced"], st["consumed"])
	}
	if !cluster.Converged() {
		log.Fatal("replicas diverged!")
	}
	fmt.Println("all replicas agree: 3 items produced (sum 6), 3 consumed, queue empty")
}
