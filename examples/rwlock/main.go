// Readers-writer coordination built from monitors — a heavier
// condition-variable workout than the bounded queue: state-dependent
// blocking in two directions, notifyall storms, and many concurrent
// request threads, all replicated deterministically.
//
// The object implements a classic readers-writer protocol: any number of
// concurrent readers OR one writer. Because the whole protocol is
// ordinary object state guarded by one monitor, the deterministic
// scheduler replicates it without any special support — every replica's
// readers and writers interleave identically.
//
// Run with: go run ./examples/rwlock
package main

import (
	"fmt"
	"log"

	"detmt"
)

const rwSource = `
object RWRegister {
    monitor gate;
    field readers;
    field writing;
    field value;
    field readsSeen;
    field maxConcurrentReaders;

    method read() {
        var got = 0;
        sync (gate) {
            while (writing == 1) {
                wait(gate);
            }
            readers = readers + 1;
            if (readers > maxConcurrentReaders) {
                maxConcurrentReaders = readers;
            }
        }
        compute(2ms);   // the read itself, outside the gate
        sync (gate) {
            got = value;
            readsSeen = readsSeen + 1;
            readers = readers - 1;
            if (readers == 0) {
                notifyall(gate);
            }
        }
        return got;
    }

    method write(v) {
        sync (gate) {
            while (writing == 1 || readers > 0) {
                wait(gate);
            }
            writing = 1;
        }
        compute(3ms);   // the write itself
        sync (gate) {
            value = v;
            writing = 0;
            notifyall(gate);
        }
    }
}
`

func run(scheduler detmt.Scheduler) *detmt.Cluster {
	cluster, err := detmt.NewCluster(detmt.Options{
		Source:    rwSource,
		Scheduler: scheduler,
	})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Run(func(s *detmt.Session) {
		join := s.Join()
		// A writer kicks things off, then five readers pile in while a
		// second writer queues behind them.
		w1 := s.NewClient(1)
		join.Go(func() {
			if _, _, err := w1.Invoke("write", int64(7)); err != nil {
				log.Fatalf("write: %v", err)
			}
		})
		for r := 0; r < 5; r++ {
			client := s.NewClient(10 + r)
			join.Go(func() {
				if _, _, err := client.Invoke("read"); err != nil {
					log.Fatalf("read: %v", err)
				}
			})
		}
		w2 := s.NewClient(2)
		join.Go(func() {
			if _, _, err := w2.Invoke("write", int64(9)); err != nil {
				log.Fatalf("write: %v", err)
			}
		})
		join.Wait()
	})
	if !cluster.Converged() {
		log.Fatalf("%s: replicas diverged!", scheduler)
	}
	st := cluster.State(1)
	if st["readsSeen"] != int64(5) || st["writing"] != int64(0) || st["readers"] != int64(0) {
		log.Fatalf("%s: protocol state broken: %v", scheduler, st)
	}
	return cluster
}

func main() {
	fmt.Println("one writer, five readers, one more writer — per scheduler:")
	for _, scheduler := range []detmt.Scheduler{detmt.SAT, detmt.MAT, detmt.LSA} {
		cluster := run(scheduler)
		st := cluster.State(1)
		fmt.Printf("  %-4s value=%v reads=%v maxConcurrentReaders=%v converged=%v\n",
			scheduler, st["value"], st["readsSeen"], st["maxConcurrentReaders"], cluster.Converged())
	}
	fmt.Println()
	fmt.Println("Every scheduler runs the protocol correctly and keeps the replicas")
	fmt.Println("identical. The symmetric schedulers serialise the gate (one reader at")
	fmt.Println("a time acquires it while the previous one still owns the execution")
	fmt.Println("slot), so maxConcurrentReaders stays 1; the unrestricted LSA leader")
	fmt.Println("lets the readers truly overlap — and its followers still replay the")
	fmt.Println("exact same schedule.")
}
