// Quickstart: a replicated counter under deterministic multithreading.
//
// Three replicas execute every request; the PMAT scheduler (the paper's
// lock-prediction proposal) keeps the execution deterministic, so all
// replicas converge to the same state without any coordination beyond
// the totally ordered request stream.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"detmt"
)

const counterSource = `
object Counter {
    monitor lock;
    field count;

    method add(n) {
        sync (lock) {
            count = count + n;
            compute(1ms);
        }
    }

    method get() {
        var v = 0;
        sync (lock) {
            v = count;
        }
        return v;
    }
}
`

func main() {
	cluster, err := detmt.NewCluster(detmt.Options{
		Source:    counterSource,
		Scheduler: detmt.PMAT,
		Replicas:  3,
	})
	if err != nil {
		log.Fatal(err)
	}

	cluster.Run(func(s *detmt.Session) {
		// Five clients hammer the counter concurrently.
		join := s.Join()
		for ci := 1; ci <= 5; ci++ {
			client := s.NewClient(ci)
			join.Go(func() {
				for k := 0; k < 4; k++ {
					if _, _, err := client.Invoke("add", int64(1)); err != nil {
						log.Fatalf("add: %v", err)
					}
				}
			})
		}
		join.Wait()

		reader := s.NewClient(99)
		v, latency, err := reader.Invoke("get")
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		fmt.Printf("counter value: %v (latency %v of virtual time)\n", v, latency)
	})

	fmt.Printf("replicas converged: %v\n", cluster.Converged())
	fmt.Printf("replica states: %v | %v | %v\n",
		cluster.State(1)["count"], cluster.State(2)["count"], cluster.State(3)["count"])
	transfers, broadcasts, _ := cluster.Traffic()
	fmt.Printf("network: %d broadcasts, %d wire transfers, all inside %v of virtual time\n",
		broadcasts, transfers, cluster.Now())
}
