// Bank: fine-grained locking and the value of lock prediction.
//
// The bank object guards every account with its own monitor — the
// fine-grained locking pattern the paper says makes pessimistic
// schedulers "very restrictive" (Sect. 4). Transfers lock two accounts
// in ascending order; audits sweep all accounts in a loop.
//
// The example runs the same deposit workload under plain MAT and under
// PMAT: MAT serialises every lock acquisition behind its single primary
// thread, while PMAT's static lock prediction proves that deposits to
// different accounts can never conflict and lets them run in parallel.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"time"

	"detmt"
)

const bankSource = `
object Bank {
    monitor accounts[16];
    monitor totalLock;
    field balance0;
    field total;

    // deposit locks exactly one account monitor: the analysis announces
    // accounts[acct] at method entry (immutable array + parameter), so
    // PMAT knows two deposits to different accounts never conflict.
    method deposit(acct, amount) {
        sync (accounts[acct]) {
            compute(2ms);
            total = total + amount;
        }
    }

    // transfer locks two accounts in ascending index order (deadlock
    // discipline) and both monitors are announced up front.
    method transfer(from, to, amount) {
        var lo = from;
        var hi = to;
        if (to < from) {
            lo = to;
            hi = from;
        }
        sync (accounts[lo]) {
            sync (accounts[hi]) {
                compute(1ms);
            }
        }
    }

    // audit sweeps every account: a variable-mutex loop, so the thread
    // is only "predicted" once the loop is done (paper Sect. 4.4).
    method audit() {
        var sum = 0;
        repeat i : 16 {
            sync (accounts[i]) {
                sum = sum + 1;
            }
        }
        return sum;
    }
}
`

func run(scheduler detmt.Scheduler) (time.Duration, bool) {
	cluster, err := detmt.NewCluster(detmt.Options{
		Source:    bankSource,
		Scheduler: scheduler,
	})
	if err != nil {
		log.Fatal(err)
	}
	var worst time.Duration
	cluster.Run(func(s *detmt.Session) {
		join := s.Join()
		// Eight tellers deposit into eight distinct accounts: disjoint
		// lock sets, fully parallelisable — if the scheduler can tell.
		for teller := 0; teller < 8; teller++ {
			client := s.NewClient(teller + 1)
			acct := int64(teller)
			join.Go(func() {
				for k := 0; k < 3; k++ {
					_, lat, err := client.Invoke("deposit", acct, int64(100))
					if err != nil {
						log.Fatalf("deposit: %v", err)
					}
					if lat > worst {
						worst = lat
					}
				}
			})
		}
		join.Wait()

		// One transfer and one audit exercise the multi-lock and
		// loop-classified paths.
		ops := s.NewClient(50)
		if _, _, err := ops.Invoke("transfer", int64(3), int64(1), int64(25)); err != nil {
			log.Fatalf("transfer: %v", err)
		}
		if v, _, err := ops.Invoke("audit"); err != nil || v != int64(16) {
			log.Fatalf("audit: %v (%v)", v, err)
		}
	})
	if got := cluster.State(1)["total"]; got != int64(2400) {
		log.Fatalf("%s: total %v, want 2400", scheduler, got)
	}
	return worst, cluster.Converged()
}

func main() {
	fmt.Println("8 tellers x 3 deposits into disjoint accounts (2ms critical sections)")
	for _, sched := range []detmt.Scheduler{detmt.MAT, detmt.MATLLA, detmt.PMAT} {
		worst, converged := run(sched)
		fmt.Printf("  %-8s worst deposit latency %8v   replicas converged: %v\n", sched, worst, converged)
	}
	fmt.Println()
	fmt.Println("MAT blocks every deposit behind the primary thread regardless of the")
	fmt.Println("account; PMAT's lock prediction proves the accounts disjoint and lets")
	fmt.Println("the critical sections overlap — the paper's Fig. 3 effect at scale.")
}
