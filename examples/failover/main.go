// Failover: passive replication with deterministic re-execution.
//
// The paper's second motivation for deterministic scheduling: in passive
// replication, backups can reconstruct a failed primary's state by
// re-executing the request log — but only if the scheduler replays the
// same multithreaded schedule. This example runs a primary with two
// logging backups, "crashes" the primary, replays a backup's log, and
// verifies state and schedule equality.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"detmt/internal/analysis"
	"detmt/internal/gcs"
	"detmt/internal/ids"
	"detmt/internal/lang"
	"detmt/internal/replica"
	"detmt/internal/vclock"
)

const ledgerSource = `
object Ledger {
    monitor entriesLock;
    monitor auditLock;
    field entries;
    field checksum;

    method record(amount) {
        sync (entriesLock) {
            entries = entries + 1;
            compute(1ms);
        }
        nested(amount);
        sync (auditLock) {
            checksum = checksum + amount;
        }
    }
}
`

func main() {
	res, err := analysis.Analyze(lang.MustParse(ledgerSource))
	if err != nil {
		log.Fatal(err)
	}

	v := vclock.NewVirtual()
	group := gcs.NewGroup(gcs.Config{
		Clock:   v,
		Members: []ids.ReplicaID{1, 2, 3},
		Latency: 500 * time.Microsecond,
	})
	replicas := map[ids.ReplicaID]*replica.Replica{}
	for _, id := range group.Members() {
		role := replica.RoleBackup
		if id == 1 {
			role = replica.RoleActive // the primary executes; backups log
		}
		replicas[id] = replica.New(replica.Config{
			ID: id, Clock: v, Group: group, Analysis: res,
			Kind: replica.KindMAT, Role: role,
			NestedLatency: 8 * time.Millisecond,
		})
	}

	done := make(chan struct{})
	v.Go(func() {
		defer close(done)
		join := vclock.NewGroup(v)
		for ci := 1; ci <= 4; ci++ {
			client := replica.NewClient(v, group, ids.ClientID(ci))
			amount := int64(ci * 10)
			join.Go(func() {
				for k := 0; k < 2; k++ {
					if _, _, err := client.Invoke("record", amount); err != nil {
						log.Fatalf("record: %v", err)
					}
				}
			})
		}
		join.Wait()
		v.Sleep(time.Second) // drain in-flight traffic
	})
	<-done

	primaryState := replicas[1].Instance().Snapshot()
	primaryHash := replicas[1].Runtime().Trace().ConsistencyHash()
	backupLog := replicas[2].Log()
	fmt.Printf("primary state:   entries=%v checksum=%v (schedule %016x)\n",
		primaryState["entries"], primaryState["checksum"], primaryHash)
	fmt.Printf("backup 2 logged: %d totally ordered messages, executed 0 requests\n", len(backupLog))

	// --- the primary fails; a backup replays its log ---
	fmt.Println("\nprimary crashes; backup replays its request log deterministically...")
	v2 := vclock.NewVirtual()
	done2 := make(chan struct{})
	var restored *replica.Replica
	v2.Go(func() {
		defer close(done2)
		restored = replica.Replay(v2, res, replica.KindMAT, 4, backupLog)
		v2.Sleep(5 * time.Second)
	})
	<-done2

	state := restored.Instance().Snapshot()
	hash := restored.Runtime().Trace().ConsistencyHash()
	fmt.Printf("restored state:  entries=%v checksum=%v (schedule %016x)\n",
		state["entries"], state["checksum"], hash)

	if state["entries"] != primaryState["entries"] || state["checksum"] != primaryState["checksum"] {
		log.Fatal("FAILURE: replayed state differs from the primary")
	}
	if hash != primaryHash {
		log.Fatal("FAILURE: replayed schedule differs from the primary")
	}
	fmt.Println("\nstate and schedule identical: deterministic scheduling made the log replayable")
}
