// Command detmt-load is the closed-loop load generator for a running
// detmt-server cluster: N concurrent clients issue Fig. 1 requests over
// TCP, wait for the first replica reply, and report the client-perceived
// latency distribution (the paper's Fig. 1 measurement protocol, over
// real sockets). It exits non-zero if the replicas' schedule consistency
// hashes diverge.
//
// Usage:
//
//	detmt-load -servers 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 \
//	    -clients 4 -requests 8 -seed 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"detmt/internal/chaos"
	"detmt/internal/ids"
	"detmt/internal/metrics"
	"detmt/internal/server"
	"detmt/internal/workload"
)

func main() {
	servers := flag.String("servers", "", "cluster members as id=addr,id=addr,... (all of them)")
	clients := flag.Int("clients", 4, "number of concurrent closed-loop clients")
	requests := flag.Int("requests", 8, "requests per client")
	seed := flag.Uint64("seed", 1, "client-side decision seed")
	pipelined := flag.Bool("pipelined", false, "submit each client's requests as one atomic batch")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run timeout")
	iterations := flag.Int("iterations", 10, "Fig. 1 loop iterations per request (must match the servers)")
	mutexes := flag.Int("mutexes", 100, "Fig. 1 mutex set size (must match the servers)")
	families := flag.Int("families", 0,
		"drive the family-partitioned workload with this many families (0: Fig. 1; must match the servers' -families)")
	conflict := flag.Float64("conflict", 0, "family workload: cross-family request probability (must match the servers)")
	hotSkew := flag.Float64("hot-skew", 0, "family workload: hot-key skew (must match the servers)")
	clientBase := flag.Int("client-base", 0,
		"client id offset (ids are base+1..base+clients); rerunning against the SAME cluster needs a disjoint range")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of text")
	verbose := flag.Bool("v", false, "log transport diagnostics")
	chaosOn := flag.Bool("chaos", false, "run a seeded fault-injection plan against this generator's own connections")
	chaosSeed := flag.Uint64("chaos-seed", 1, "chaos plan seed (reproducible fault schedule)")
	chaosStep := flag.Duration("chaos-step", 100*time.Millisecond, "interval between chaos fault decisions")
	chaosSever := flag.Float64("chaos-sever", 0.1, "per-step probability of severing every connection")
	chaosPartition := flag.Float64("chaos-partition", 0.05, "per-step probability of partitioning one random server")
	chaosPartitionFor := flag.Duration("chaos-partition-for", 500*time.Millisecond, "how long an injected partition lasts")
	chaosDelay := flag.Float64("chaos-delay", 0.2, "per-step probability of delaying reads for one step")
	chaosDelayBy := flag.Duration("chaos-delay-by", 5*time.Millisecond, "read delay applied when the delay fault fires")
	flag.Parse()

	serverMap, err := parseServers(*servers)
	if err != nil || len(serverMap) == 0 {
		fmt.Fprintf(os.Stderr, "detmt-load: bad -servers: %v\n", err)
		os.Exit(2)
	}
	wl := workload.DefaultFig1()
	wl.Iterations = *iterations
	wl.Mutexes = *mutexes
	var fam *workload.FamilyConfig
	if *families > 0 {
		f := workload.DefaultFamilies()
		f.Families = *families
		f.PGlobal = *conflict
		f.HotSkew = *hotSkew
		fam = &f
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	opts := server.LoadOptions{
		Servers:           serverMap,
		Clients:           *clients,
		RequestsPerClient: *requests,
		Seed:              *seed,
		Workload:          wl,
		Families:          fam,
		ClientBase:        *clientBase,
		Pipelined:         *pipelined,
		Timeout:           *timeout,
		Logf:              logf,
	}
	var inj *chaos.Injector
	if *chaosOn {
		inj = chaos.New()
		opts.Dial = inj.Dial(nil)
		addrs := make([]string, 0, len(serverMap))
		for _, a := range serverMap {
			addrs = append(addrs, a)
		}
		stop := make(chan struct{})
		defer close(stop)
		go inj.Run(chaos.Plan{
			Seed:         *chaosSeed,
			Step:         *chaosStep,
			PSever:       *chaosSever,
			PPartition:   *chaosPartition,
			PartitionFor: *chaosPartitionFor,
			PDelay:       *chaosDelay,
			DelayBy:      *chaosDelayBy,
			Addrs:        addrs,
		}, stop)
	}
	res, err := server.RunLoad(opts)
	if inj != nil {
		sev, blocked := inj.Stats()
		log.Printf("detmt-load: chaos totals: severed=%d dials-blocked=%d", sev, blocked)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}

	qs := res.Latency.Quantiles(50, 95)
	if *jsonOut {
		out := struct {
			Requests  int             `json:"requests"`
			Errors    int             `json:"errors"`
			ElapsedMs float64         `json:"elapsed_ms"`
			MeanMs    float64         `json:"latency_mean_ms"`
			P50Ms     float64         `json:"latency_p50_ms"`
			P95Ms     float64         `json:"latency_p95_ms"`
			MaxMs     float64         `json:"latency_max_ms"`
			Converged bool            `json:"converged"`
			Hashes    []uint64        `json:"hashes"`
			Statuses  []server.Status `json:"statuses"`
		}{
			Requests:  res.Requests,
			Errors:    res.Errors,
			ElapsedMs: ms(res.Elapsed),
			MeanMs:    ms(res.Latency.Mean()),
			P50Ms:     ms(qs[0]),
			P95Ms:     ms(qs[1]),
			MaxMs:     ms(res.Latency.Max()),
			Converged: res.Converged,
			Hashes:    res.Hashes,
			Statuses:  res.Statuses,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("requests  %d (%d errors) in %s wall\n", res.Requests, res.Errors, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("latency   mean %s ms  p50 %s ms  p95 %s ms  max %s ms\n",
			metrics.Ms(res.Latency.Mean()), metrics.Ms(qs[0]),
			metrics.Ms(qs[1]), metrics.Ms(res.Latency.Max()))
		for _, st := range res.Statuses {
			fmt.Printf("replica %v  scheduler=%s completed=%d state=%d hash=%016x\n",
				st.ID, st.Scheduler, st.Completed, st.State, st.Hash)
		}
	}
	if !res.Converged {
		fmt.Fprintln(os.Stderr, "detmt-load: DIVERGED — replica consistency hashes differ")
		os.Exit(1)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func parseServers(s string) (map[ids.ReplicaID]string, error) {
	out := map[ids.ReplicaID]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("%q is not id=addr", part)
		}
		n, err := strconv.Atoi(kv[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive replica id", kv[0])
		}
		if _, dup := out[ids.ReplicaID(n)]; dup {
			return nil, fmt.Errorf("replica id %d listed twice", n)
		}
		out[ids.ReplicaID(n)] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty server list")
	}
	return out, nil
}
