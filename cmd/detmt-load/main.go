// Command detmt-load is the closed-loop load generator for a running
// detmt-server cluster: N concurrent clients issue Fig. 1 requests over
// TCP, wait for the first replica reply, and report the client-perceived
// latency distribution (the paper's Fig. 1 measurement protocol, over
// real sockets). It exits non-zero if the replicas' schedule consistency
// hashes diverge.
//
// Usage:
//
//	detmt-load -servers 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 \
//	    -clients 4 -requests 8 -seed 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"detmt/internal/chaos"
	"detmt/internal/ids"
	"detmt/internal/kvapi"
	"detmt/internal/lang"
	"detmt/internal/metrics"
	"detmt/internal/server"
	"detmt/internal/workload"
)

func main() {
	servers := flag.String("servers", "", "cluster members as id=addr,id=addr,... (all of them)")
	clients := flag.Int("clients", 4, "number of concurrent closed-loop clients")
	requests := flag.Int("requests", 8, "requests per client")
	seed := flag.Uint64("seed", 1, "client-side decision seed")
	pipelined := flag.Bool("pipelined", false, "submit each client's requests as one atomic batch")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall run timeout")
	rate := flag.Float64("rate", 0,
		"open-loop mode: offered arrival rate in req/s decoupled from responses (0: closed loop); -clients sizes the submit pool")
	duration := flag.Duration("duration", 5*time.Second, "open loop: measured window")
	warmup := flag.Duration("warmup", time.Second, "open loop: warmup before the measured window (completions discarded)")
	poisson := flag.Bool("poisson", false, "open loop: Poisson (exponential) inter-arrival times instead of fixed")
	slo := flag.Duration("slo", 0, "open loop: p99 intent-latency budget for the SLO verdict (0: none)")
	batchSubmit := flag.Bool("batch-submit", false, "open loop: coalesce due arrivals into one atomic wire frame per pump wakeup")
	maxInFlight := flag.Int("max-inflight", 0, "open loop: outstanding-request cap; arrivals beyond it are shed (0: 4096)")
	iterations := flag.Int("iterations", 10, "Fig. 1 loop iterations per request (must match the servers)")
	mutexes := flag.Int("mutexes", 100, "Fig. 1 mutex set size (must match the servers)")
	families := flag.Int("families", 0,
		"drive the family-partitioned workload with this many families (0: Fig. 1; must match the servers' -families)")
	conflict := flag.Float64("conflict", 0, "family workload: cross-family request probability (must match the servers)")
	hotSkew := flag.Float64("hot-skew", 0, "family workload: hot-key skew (must match the servers)")
	clientBase := flag.Int("client-base", 0,
		"client id offset (ids are base+1..base+clients); rerunning against the SAME cluster needs a disjoint range")
	shardsOn := flag.Bool("shards", false,
		"sharded mode: fetch the ring from -servers (any tenant port of each member), route every request by key, and report per-shard counts and the imbalance ratio")
	httpURL := flag.String("http", "",
		"httpload mode: drive a detmt-gateway facade at this base URL (e.g. http://127.0.0.1:8080) instead of the TCP protocol; closed loop, or open loop with -rate")
	kvOn := flag.Bool("kv", false,
		"sharded mode: drive the replicated KV object (servers started with -kv) instead of Fig. 1")
	keys := flag.Int("keys", 1024, "KV key-space size (-http and -kv modes)")
	pGet := flag.Float64("pget", 0.5, "KV read fraction (-http and -kv modes)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of text")
	verbose := flag.Bool("v", false, "log transport diagnostics")
	chaosOn := flag.Bool("chaos", false, "run a seeded fault-injection plan against this generator's own connections")
	chaosSeed := flag.Uint64("chaos-seed", 1, "chaos plan seed (reproducible fault schedule)")
	chaosStep := flag.Duration("chaos-step", 100*time.Millisecond, "interval between chaos fault decisions")
	chaosSever := flag.Float64("chaos-sever", 0.1, "per-step probability of severing every connection")
	chaosPartition := flag.Float64("chaos-partition", 0.05, "per-step probability of partitioning one random server")
	chaosPartitionFor := flag.Duration("chaos-partition-for", 500*time.Millisecond, "how long an injected partition lasts")
	chaosDelay := flag.Float64("chaos-delay", 0.2, "per-step probability of delaying reads for one step")
	chaosDelayBy := flag.Duration("chaos-delay-by", 5*time.Millisecond, "read delay applied when the delay fault fires")
	flag.Parse()

	logfEarly := func(string, ...interface{}) {}
	if *verbose {
		logfEarly = log.Printf
	}
	if *httpURL != "" {
		runHTTP(*httpURL, httpParams{
			clients:     *clients,
			requests:    *requests,
			seed:        *seed,
			keys:        *keys,
			pGet:        *pGet,
			rate:        *rate,
			duration:    *duration,
			warmup:      *warmup,
			poisson:     *poisson,
			slo:         *slo,
			maxInFlight: *maxInFlight,
			jsonOut:     *jsonOut,
			logf:        logfEarly,
		})
		return
	}

	serverMap, err := parseServers(*servers)
	if err != nil || len(serverMap) == 0 {
		fmt.Fprintf(os.Stderr, "detmt-load: bad -servers: %v\n", err)
		os.Exit(2)
	}
	if *kvOn && !*shardsOn {
		fmt.Fprintln(os.Stderr, "detmt-load: -kv requires -shards (or use -http against a gateway)")
		os.Exit(2)
	}
	wl := workload.DefaultFig1()
	wl.Iterations = *iterations
	wl.Mutexes = *mutexes
	var fam *workload.FamilyConfig
	if *families > 0 {
		f := workload.DefaultFamilies()
		f.Families = *families
		f.PGlobal = *conflict
		f.HotSkew = *hotSkew
		fam = &f
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	opts := server.LoadOptions{
		Servers:           serverMap,
		Clients:           *clients,
		RequestsPerClient: *requests,
		Seed:              *seed,
		Workload:          wl,
		Families:          fam,
		ClientBase:        *clientBase,
		Pipelined:         *pipelined,
		Timeout:           *timeout,
		Logf:              logf,
	}
	var inj *chaos.Injector
	if *chaosOn {
		inj = chaos.New()
		opts.Dial = inj.Dial(nil)
		addrs := make([]string, 0, len(serverMap))
		for _, a := range serverMap {
			addrs = append(addrs, a)
		}
		stop := make(chan struct{})
		defer close(stop)
		go inj.Run(chaos.Plan{
			Seed:         *chaosSeed,
			Step:         *chaosStep,
			PSever:       *chaosSever,
			PPartition:   *chaosPartition,
			PartitionFor: *chaosPartitionFor,
			PDelay:       *chaosDelay,
			DelayBy:      *chaosDelayBy,
			Addrs:        addrs,
		}, stop)
	}
	if *shardsOn {
		if fam != nil {
			fmt.Fprintln(os.Stderr, "detmt-load: -families is not supported in sharded mode")
			os.Exit(2)
		}
		var gen func(*ids.RNG) (uint64, string, []lang.Value)
		if *kvOn {
			nkeys, frac := *keys, *pGet
			gen = func(rng *ids.RNG) (uint64, string, []lang.Value) {
				return workload.KVRequest(rng, nkeys, frac)
			}
		}
		runSharded(serverMap, shardedParams{
			clients:     *clients,
			requests:    *requests,
			seed:        *seed,
			workload:    wl,
			gen:         gen,
			clientBase:  *clientBase,
			timeout:     *timeout,
			rate:        *rate,
			duration:    *duration,
			warmup:      *warmup,
			poisson:     *poisson,
			slo:         *slo,
			batchSubmit: *batchSubmit,
			maxInFlight: *maxInFlight,
			jsonOut:     *jsonOut,
			dial:        opts.Dial,
			logf:        logf,
		})
		return
	}
	if *rate > 0 {
		runOpenLoop(server.OpenLoadOptions{
			Servers:     serverMap,
			Rate:        *rate,
			Duration:    *duration,
			Warmup:      *warmup,
			Poisson:     *poisson,
			Clients:     *clients,
			MaxInFlight: *maxInFlight,
			BatchSubmit: *batchSubmit,
			SLO:         *slo,
			Seed:        *seed,
			Workload:    wl,
			Families:    fam,
			ClientBase:  *clientBase,
			Dial:        opts.Dial,
			Logf:        logf,
		}, *jsonOut, inj)
		return
	}

	res, err := server.RunLoad(opts)
	if inj != nil {
		sev, blocked := inj.Stats()
		log.Printf("detmt-load: chaos totals: severed=%d dials-blocked=%d", sev, blocked)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}

	qs := res.Latency.Quantiles(50, 95)
	if *jsonOut {
		out := struct {
			Requests  int             `json:"requests"`
			Errors    int             `json:"errors"`
			Retries   int             `json:"retries"`
			Timeouts  int             `json:"timeouts"`
			ElapsedMs float64         `json:"elapsed_ms"`
			MeanMs    float64         `json:"latency_mean_ms"`
			P50Ms     float64         `json:"latency_p50_ms"`
			P95Ms     float64         `json:"latency_p95_ms"`
			MaxMs     float64         `json:"latency_max_ms"`
			Converged bool            `json:"converged"`
			Hashes    []uint64        `json:"hashes"`
			Statuses  []server.Status `json:"statuses"`
		}{
			Requests:  res.Requests,
			Errors:    res.Errors,
			Retries:   res.Retries,
			Timeouts:  res.Timeouts,
			ElapsedMs: ms(res.Elapsed),
			MeanMs:    ms(res.Latency.Mean()),
			P50Ms:     ms(qs[0]),
			P95Ms:     ms(qs[1]),
			MaxMs:     ms(res.Latency.Max()),
			Converged: res.Converged,
			Hashes:    res.Hashes,
			Statuses:  res.Statuses,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("requests  %d (%d errors) in %s wall\n", res.Requests, res.Errors, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("errors    no-sequencer retries %d, timeouts %d\n", res.Retries, res.Timeouts)
		fmt.Printf("latency   mean %s ms  p50 %s ms  p95 %s ms  max %s ms\n",
			metrics.Ms(res.Latency.Mean()), metrics.Ms(qs[0]),
			metrics.Ms(qs[1]), metrics.Ms(res.Latency.Max()))
		for _, st := range res.Statuses {
			fmt.Printf("replica %v  scheduler=%s completed=%d state=%d hash=%016x\n",
				st.ID, st.Scheduler, st.Completed, st.State, st.Hash)
		}
	}
	if !res.Converged {
		fmt.Fprintln(os.Stderr, "detmt-load: DIVERGED — replica consistency hashes differ")
		os.Exit(1)
	}
}

// runOpenLoop drives the open-loop mode and prints its summary. Fatal
// conditions (divergence, run error) exit non-zero; a missed SLO alone
// does not — the ceiling search treads over the SLO on purpose.
func runOpenLoop(o server.OpenLoadOptions, jsonOut bool, inj *chaos.Injector) {
	res, err := server.RunOpenLoad(o)
	if inj != nil {
		sev, blocked := inj.Stats()
		log.Printf("detmt-load: chaos totals: severed=%d dials-blocked=%d", sev, blocked)
	}
	if res == nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}
	iq := res.Intent.Quantiles(50, 99, 99.9)
	sq := res.Service.Quantiles(50, 99)
	if jsonOut {
		out := struct {
			OfferedRPS  float64         `json:"offered_rps"`
			AchievedRPS float64         `json:"achieved_rps"`
			Sent        int             `json:"sent"`
			Measured    int             `json:"measured"`
			Shed        int             `json:"shed"`
			Timeouts    int             `json:"timeouts"`
			NoSeqErr    int             `json:"no_sequencer_errors"`
			Errors      int             `json:"errors"`
			IntentP50Ms float64         `json:"intent_p50_ms"`
			IntentP99Ms float64         `json:"intent_p99_ms"`
			IntentP999  float64         `json:"intent_p999_ms"`
			IntentMaxMs float64         `json:"intent_max_ms"`
			SvcP50Ms    float64         `json:"service_p50_ms"`
			SvcP99Ms    float64         `json:"service_p99_ms"`
			SLOMet      bool            `json:"slo_met"`
			Converged   bool            `json:"converged"`
			Hashes      []uint64        `json:"hashes"`
			Statuses    []server.Status `json:"statuses"`
		}{
			OfferedRPS:  res.Offered,
			AchievedRPS: res.Achieved,
			Sent:        res.Sent,
			Measured:    res.Measured,
			Shed:        res.Shed,
			Timeouts:    res.Timeouts,
			NoSeqErr:    res.NoSeqErr,
			Errors:      res.Errors,
			IntentP50Ms: ms(iq[0]),
			IntentP99Ms: ms(iq[1]),
			IntentP999:  ms(iq[2]),
			IntentMaxMs: ms(res.Intent.Max()),
			SvcP50Ms:    ms(sq[0]),
			SvcP99Ms:    ms(sq[1]),
			SLOMet:      res.SLOMet,
			Converged:   res.Converged,
			Hashes:      res.Hashes,
			Statuses:    res.Statuses,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("offered   %.0f req/s  achieved %.0f req/s  (%d sent, %d measured)\n",
			res.Offered, res.Achieved, res.Sent, res.Measured)
		fmt.Printf("errors    shed %d, timeouts %d, no-sequencer %d, other %d\n",
			res.Shed, res.Timeouts, res.NoSeqErr, res.Errors)
		fmt.Printf("intent    p50 %s ms  p99 %s ms  p99.9 %s ms  max %s ms  (coordinated-omission corrected)\n",
			metrics.Ms(iq[0]), metrics.Ms(iq[1]), metrics.Ms(iq[2]), metrics.Ms(res.Intent.Max()))
		fmt.Printf("service   p50 %s ms  p99 %s ms\n", metrics.Ms(sq[0]), metrics.Ms(sq[1]))
		if o.SLO > 0 {
			verdict := "MET"
			if !res.SLOMet {
				verdict = "MISSED"
			}
			fmt.Printf("slo       p99 budget %v: %s\n", o.SLO, verdict)
		}
		for _, st := range res.Statuses {
			fmt.Printf("replica %v  scheduler=%s completed=%d state=%d hash=%016x\n",
				st.ID, st.Scheduler, st.Completed, st.State, st.Hash)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}
	if !res.Converged {
		fmt.Fprintln(os.Stderr, "detmt-load: DIVERGED — replica consistency hashes differ")
		os.Exit(1)
	}
}

// shardedParams carries the flag values the sharded mode consumes.
type shardedParams struct {
	clients     int
	requests    int
	seed        uint64
	workload    workload.Fig1Config
	gen         func(*ids.RNG) (uint64, string, []lang.Value)
	clientBase  int
	timeout     time.Duration
	rate        float64
	duration    time.Duration
	warmup      time.Duration
	poisson     bool
	slo         time.Duration
	batchSubmit bool
	maxInFlight int
	jsonOut     bool
	dial        func(addr string) (net.Conn, error)
	logf        func(format string, args ...interface{})
}

// shardLine is the per-shard slice of the sharded JSON summary.
type shardLine struct {
	Shard       int             `json:"shard"`
	Routed      uint64          `json:"routed"`
	AchievedRPS float64         `json:"achieved_rps,omitempty"`
	Converged   bool            `json:"converged"`
	Hashes      []uint64        `json:"hashes"`
	Statuses    []server.Status `json:"statuses"`
}

func shardLines(sums []server.ShardSummary) []shardLine {
	out := make([]shardLine, 0, len(sums))
	for _, s := range sums {
		out = append(out, shardLine{
			Shard:       s.Shard,
			Routed:      s.Routed,
			AchievedRPS: s.Achieved,
			Converged:   s.Converged,
			Hashes:      s.Hashes,
			Statuses:    s.Statuses,
		})
	}
	return out
}

func printShardSummaries(sums []server.ShardSummary, imbalance float64) {
	for _, s := range sums {
		extra := ""
		if s.Achieved > 0 {
			extra = fmt.Sprintf("  achieved %.0f req/s", s.Achieved)
		}
		fmt.Printf("shard g%d  routed %d%s  converged=%v\n", s.Shard, s.Routed, extra, s.Converged)
		for _, st := range s.Statuses {
			fmt.Printf("  replica %v  completed=%d state=%d hash=%016x\n",
				st.ID, st.Completed, st.State, st.Hash)
		}
	}
	fmt.Printf("imbalance %.3f (max/mean routed per shard; 1.000 = perfectly even)\n", imbalance)
}

// runSharded fetches and verifies the ring, then drives the closed- or
// open-loop sharded driver against it.
func runSharded(serverMap map[ids.ReplicaID]string, p shardedParams) {
	addrs := make([]string, 0, len(serverMap))
	for _, a := range serverMap {
		addrs = append(addrs, a)
	}
	ring, err := server.FetchRing(addrs, 10*time.Second, p.dial, p.logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}
	ringHash, _ := ring.Hash()
	log.Printf("detmt-load: ring %016x with %d shard(s), verified across %d member(s)",
		ringHash, len(ring.Groups), len(addrs))

	if p.rate > 0 {
		res, err := server.RunShardedOpenLoad(server.ShardedOpenLoadOptions{
			Ring:        ring,
			Rate:        p.rate,
			Duration:    p.duration,
			Warmup:      p.warmup,
			Poisson:     p.poisson,
			Clients:     p.clients,
			MaxInFlight: p.maxInFlight,
			BatchSubmit: p.batchSubmit,
			SLO:         p.slo,
			Seed:        p.seed,
			Workload:    p.workload,
			Gen:         p.gen,
			ClientBase:  p.clientBase,
			Dial:        p.dial,
			Logf:        p.logf,
		})
		if res == nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
			os.Exit(1)
		}
		iq := res.Intent.Quantiles(50, 99)
		if p.jsonOut {
			out := struct {
				OfferedRPS  float64     `json:"offered_rps"`
				AchievedRPS float64     `json:"achieved_rps"`
				Sent        int         `json:"sent"`
				Measured    int         `json:"measured"`
				Shed        int         `json:"shed"`
				Timeouts    int         `json:"timeouts"`
				Errors      int         `json:"errors"`
				IntentP50Ms float64     `json:"intent_p50_ms"`
				IntentP99Ms float64     `json:"intent_p99_ms"`
				SLOMet      bool        `json:"slo_met"`
				Imbalance   float64     `json:"imbalance"`
				Converged   bool        `json:"converged"`
				PerShard    []shardLine `json:"per_shard"`
			}{
				OfferedRPS:  res.Offered,
				AchievedRPS: res.Achieved,
				Sent:        res.Sent,
				Measured:    res.Measured,
				Shed:        res.Shed,
				Timeouts:    res.Timeouts,
				Errors:      res.Errors + res.NoSeqErr,
				IntentP50Ms: ms(iq[0]),
				IntentP99Ms: ms(iq[1]),
				SLOMet:      res.SLOMet,
				Imbalance:   res.Imbalance,
				Converged:   res.Converged,
				PerShard:    shardLines(res.PerShard),
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if eerr := enc.Encode(out); eerr != nil {
				fmt.Fprintf(os.Stderr, "detmt-load: %v\n", eerr)
				os.Exit(1)
			}
		} else {
			fmt.Printf("offered   %.0f req/s aggregate  achieved %.0f req/s  (%d sent, %d measured)\n",
				res.Offered, res.Achieved, res.Sent, res.Measured)
			fmt.Printf("errors    shed %d, timeouts %d, no-sequencer %d, other %d\n",
				res.Shed, res.Timeouts, res.NoSeqErr, res.Errors)
			fmt.Printf("intent    p50 %s ms  p99 %s ms  (coordinated-omission corrected)\n",
				metrics.Ms(iq[0]), metrics.Ms(iq[1]))
			if p.slo > 0 {
				verdict := "MET"
				if !res.SLOMet {
					verdict = "MISSED"
				}
				fmt.Printf("slo       p99 budget %v: %s\n", p.slo, verdict)
			}
			printShardSummaries(res.PerShard, res.Imbalance)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
			os.Exit(1)
		}
		if !res.Converged {
			fmt.Fprintln(os.Stderr, "detmt-load: DIVERGED — a shard's replica hashes differ")
			os.Exit(1)
		}
		return
	}

	res, err := server.RunShardedLoad(server.ShardedLoadOptions{
		Ring:              ring,
		Clients:           p.clients,
		RequestsPerClient: p.requests,
		Seed:              p.seed,
		Workload:          p.workload,
		Gen:               p.gen,
		ClientBase:        p.clientBase,
		Timeout:           p.timeout,
		Dial:              p.dial,
		Logf:              p.logf,
	})
	if res == nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}
	qs := res.Latency.Quantiles(50, 95)
	if p.jsonOut {
		out := struct {
			Requests  int         `json:"requests"`
			Errors    int         `json:"errors"`
			Retries   int         `json:"retries"`
			ElapsedMs float64     `json:"elapsed_ms"`
			MeanMs    float64     `json:"latency_mean_ms"`
			P50Ms     float64     `json:"latency_p50_ms"`
			P95Ms     float64     `json:"latency_p95_ms"`
			Imbalance float64     `json:"imbalance"`
			Converged bool        `json:"converged"`
			PerShard  []shardLine `json:"per_shard"`
		}{
			Requests:  res.Requests,
			Errors:    res.Errors,
			Retries:   res.Retries,
			ElapsedMs: ms(res.Elapsed),
			MeanMs:    ms(res.Latency.Mean()),
			P50Ms:     ms(qs[0]),
			P95Ms:     ms(qs[1]),
			Imbalance: res.Imbalance,
			Converged: res.Converged,
			PerShard:  shardLines(res.PerShard),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if eerr := enc.Encode(out); eerr != nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", eerr)
			os.Exit(1)
		}
	} else {
		fmt.Printf("requests  %d (%d errors) in %s wall\n",
			res.Requests, res.Errors, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("latency   mean %s ms  p50 %s ms  p95 %s ms\n",
			metrics.Ms(res.Latency.Mean()), metrics.Ms(qs[0]), metrics.Ms(qs[1]))
		printShardSummaries(res.PerShard, res.Imbalance)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}
	if !res.Converged {
		fmt.Fprintln(os.Stderr, "detmt-load: DIVERGED — a shard's replica hashes differ")
		os.Exit(1)
	}
}

// httpParams carries the flag values the httpload mode consumes.
type httpParams struct {
	clients     int
	requests    int
	seed        uint64
	keys        int
	pGet        float64
	rate        float64
	duration    time.Duration
	warmup      time.Duration
	poisson     bool
	slo         time.Duration
	maxInFlight int
	jsonOut     bool
	logf        func(format string, args ...interface{})
}

// runHTTP drives a detmt-gateway facade: closed-loop by default, open
// loop when -rate is set.
func runHTTP(url string, p httpParams) {
	if p.rate > 0 {
		res, err := kvapi.RunHTTPOpenLoad(kvapi.HTTPOpenLoadOptions{
			URL:         url,
			Rate:        p.rate,
			Duration:    p.duration,
			Warmup:      p.warmup,
			Poisson:     p.poisson,
			MaxInFlight: p.maxInFlight,
			SLO:         p.slo,
			Keys:        p.keys,
			PGet:        p.pGet,
			Seed:        p.seed,
			Logf:        p.logf,
		})
		if res == nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
			os.Exit(1)
		}
		iq := res.Intent.Quantiles(50, 99)
		if p.jsonOut {
			out := struct {
				OfferedRPS  float64 `json:"offered_rps"`
				AchievedRPS float64 `json:"achieved_rps"`
				Sent        int     `json:"sent"`
				Measured    int     `json:"measured"`
				Shed        int     `json:"shed"`
				Errors      int     `json:"errors"`
				IntentP50Ms float64 `json:"intent_p50_ms"`
				IntentP99Ms float64 `json:"intent_p99_ms"`
				SLOMet      bool    `json:"slo_met"`
			}{res.Offered, res.Achieved, res.Sent, res.Measured, res.Shed,
				res.Errors, ms(iq[0]), ms(iq[1]), res.SLOMet}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if eerr := enc.Encode(out); eerr != nil {
				fmt.Fprintf(os.Stderr, "detmt-load: %v\n", eerr)
				os.Exit(1)
			}
		} else {
			fmt.Printf("offered   %.0f req/s  achieved %.0f req/s  (%d sent, %d measured)\n",
				res.Offered, res.Achieved, res.Sent, res.Measured)
			fmt.Printf("errors    shed %d, other %d\n", res.Shed, res.Errors)
			fmt.Printf("intent    p50 %s ms  p99 %s ms  (coordinated-omission corrected)\n",
				metrics.Ms(iq[0]), metrics.Ms(iq[1]))
			if p.slo > 0 {
				verdict := "MET"
				if !res.SLOMet {
					verdict = "MISSED"
				}
				fmt.Printf("slo       p99 budget %v: %s\n", p.slo, verdict)
			}
		}
		if res.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	res, err := kvapi.RunHTTPLoad(kvapi.HTTPLoadOptions{
		URL:               url,
		Clients:           p.clients,
		RequestsPerClient: p.requests,
		Keys:              p.keys,
		PGet:              p.pGet,
		Seed:              p.seed,
		Logf:              p.logf,
	})
	if res == nil {
		fmt.Fprintf(os.Stderr, "detmt-load: %v\n", err)
		os.Exit(1)
	}
	qs := res.Latency.Quantiles(50, 95)
	if p.jsonOut {
		out := struct {
			Requests  int     `json:"requests"`
			Errors    int     `json:"errors"`
			ElapsedMs float64 `json:"elapsed_ms"`
			MeanMs    float64 `json:"latency_mean_ms"`
			P50Ms     float64 `json:"latency_p50_ms"`
			P95Ms     float64 `json:"latency_p95_ms"`
		}{res.Requests, res.Errors, ms(res.Elapsed),
			ms(res.Latency.Mean()), ms(qs[0]), ms(qs[1])}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if eerr := enc.Encode(out); eerr != nil {
			fmt.Fprintf(os.Stderr, "detmt-load: %v\n", eerr)
			os.Exit(1)
		}
	} else {
		fmt.Printf("requests  %d (%d errors) in %s wall\n",
			res.Requests, res.Errors, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("latency   mean %s ms  p50 %s ms  p95 %s ms\n",
			metrics.Ms(res.Latency.Mean()), metrics.Ms(qs[0]), metrics.Ms(qs[1]))
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func parseServers(s string) (map[ids.ReplicaID]string, error) {
	out := map[ids.ReplicaID]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("%q is not id=addr", part)
		}
		n, err := strconv.Atoi(kv[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive replica id", kv[0])
		}
		if _, dup := out[ids.ReplicaID(n)]; dup {
			return nil, fmt.Errorf("replica id %d listed twice", n)
		}
		out[ids.ReplicaID(n)] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty server list")
	}
	return out, nil
}
