// Command detmt-gateway serves plain HTTP over a sharded detmt
// deployment hosting the replicated KV object (detmt-server -kv): a
// stateless facade that fetches and verifies the consistent-hash ring,
// routes every key to its shard, and multiplexes HTTP clients onto
// pooled deterministic client identities. Idempotency tokens (?token=)
// map onto the object's deterministic token space, so a retried PUT
// applies exactly once — the dedup lives in the replicated state
// machine, not in this process, which therefore owns nothing worth
// losing.
//
// Usage (against a 2-shard single-process cluster):
//
//	detmt-server -shards 2 -kv -listen 127.0.0.1:7300 &
//	detmt-gateway -listen 127.0.0.1:8080 -servers 127.0.0.1:7300
//	curl -X PUT -d '{"value":7}' 'http://127.0.0.1:8080/kv/42?token=r1'
//	curl http://127.0.0.1:8080/kv/42
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"detmt/internal/kvapi"
	"detmt/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP address to serve the facade on")
	servers := flag.String("servers", "", "comma-separated member addresses (any tenant port of each process)")
	clients := flag.Int("clients", 16, "pooled client identities per shard")
	clientBase := flag.Int("client-base", 0,
		fmt.Sprintf("client id offset (0: default %d); two gateways on one cluster need disjoint ranges", kvapi.ClientBase))
	retryDeadline := flag.Duration("retry-deadline", 30*time.Second,
		"per-request deadline including no-sequencer retries across view changes")
	fetchTimeout := flag.Duration("fetch-timeout", 5*time.Second, "ring-fetch timeout per member")
	epochDir := flag.String("epochs", "", "directory persisting wire-epoch counters (empty: shared temp dir)")
	verbose := flag.Bool("v", false, "log transport diagnostics")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*servers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "detmt-gateway: -servers is required")
		os.Exit(2)
	}
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}

	ring, err := server.FetchRing(addrs, *fetchTimeout, nil, logf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-gateway: %v\n", err)
		os.Exit(1)
	}
	ringHash, _ := ring.Hash()
	gw, err := kvapi.New(kvapi.Options{
		Ring:          ring,
		Clients:       *clients,
		ClientBase:    *clientBase,
		RetryDeadline: *retryDeadline,
		EpochDir:      *epochDir,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-gateway: %v\n", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *listen, Handler: gw}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("detmt-gateway: serving %d shard(s), ring %016x, on http://%s",
		gw.Clients().Shards(), ringHash, *listen)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "detmt-gateway: %v\n", err)
		gw.Close()
		os.Exit(1)
	}
	gw.Close()
	log.Printf("detmt-gateway: shut down cleanly")
}
