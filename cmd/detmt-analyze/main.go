// Command detmt-analyze runs the paper's static lock analysis (Sect. 4)
// on a mini-language object and prints the transformed source — sync
// blocks expanded into scheduler.lock/unlock calls with the injected
// lockinfo / ignore / loopdone announcements — plus the per-block
// classification and the enumerated execution paths. With no file
// argument it analyses the paper's own Fig. 4 example.
//
// Usage:
//
//	detmt-analyze [object.dmt]
package main

import (
	"flag"
	"fmt"
	"os"

	"detmt/internal/analysis"
	"detmt/internal/lang"
)

const paperExample = `// The example of the paper's Fig. 4.
object Paper {
    field myo;

    method foo(o) {
        if (o == myo) {
            sync (o) {
                compute(1ms);
            }
        } else {
            sync (myo) {
                compute(1ms);
            }
        }
    }
}
`

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detmt-analyze [object.dmt]\n\nWithout arguments, the paper's Fig. 4 example is analysed.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	src := paperExample
	name := "(built-in Fig. 4 example)"
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-analyze: %v\n", err)
			os.Exit(1)
		}
		src = string(data)
		name = flag.Arg(0)
	}

	obj, err := lang.Parse(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-analyze: %v\n", err)
		os.Exit(1)
	}
	res, err := analysis.Analyze(obj)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-analyze: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("== input: %s ==\n\n%s\n", name, lang.Print(obj))
	fmt.Printf("== transformed (scheduler calls injected) ==\n\n%s\n", lang.Print(res.Object))
	fmt.Println("== classification ==")
	for _, rep := range res.Reports {
		for _, s := range rep.Syncs {
			kind := "spontaneous (mutex unknown until the lock happens)"
			if s.Announceable {
				kind = "announceable " + s.AnnouncedAt
			}
			fmt.Printf("  %-7s %s.%s  param %-12q %s, loop=%v\n", s.SyncID, obj.Name, s.Method, s.Param, kind, s.Loop)
		}
	}
	fmt.Println("\n== execution paths (syncid sequences) ==")
	for _, rep := range res.Reports {
		fmt.Printf("  %s: ", rep.Method)
		for i, p := range rep.Paths {
			if i > 0 {
				fmt.Print(" | ")
			}
			if len(p) == 0 {
				fmt.Print("(no locks)")
			} else {
				fmt.Print(p)
			}
		}
		if rep.PathsTruncated {
			fmt.Print(" ... (truncated)")
		}
		fmt.Println()
	}
	fmt.Println("\n== interference analysis (future-work data flow) ==")
	fmt.Print(res.InterferenceMatrix())
}
