// Command detmt-trace inspects scheduler traces exported by
// `detmt-sim -trace file.json`.
//
// With one file it prints summary statistics, the decision log (-log),
// and/or the thread timeline (-gantt). With two files it compares them:
// identical consistency hashes certify that both runs drove every
// monitor through the same critical-section order; otherwise the first
// diverging decision is printed.
//
// Usage:
//
//	detmt-trace run.json                 # summary
//	detmt-trace -gantt run.json          # thread timeline
//	detmt-trace -log run.json            # full decision log
//	detmt-trace a.json b.json            # replica/rerun comparison
package main

import (
	"flag"
	"fmt"
	"os"

	"detmt/internal/trace"
)

func main() {
	gantt := flag.Bool("gantt", false, "render the thread timeline")
	htmlOut := flag.String("html", "", "write an SVG timeline page to this file")
	logOut := flag.Bool("log", false, "print the full event log")
	width := flag.Int("width", 100, "timeline width in columns")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detmt-trace [flags] trace.json [other.json]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		os.Exit(2)
	}

	tr := load(flag.Arg(0))
	if flag.NArg() == 2 {
		other := load(flag.Arg(1))
		compare(tr, other)
		return
	}

	summarise(flag.Arg(0), tr)
	if *logOut {
		fmt.Print(tr.String())
	}
	if *gantt {
		fmt.Print(trace.Gantt{Width: *width}.Render(tr))
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-trace: %v\n", err)
			os.Exit(1)
		}
		if err := tr.WriteHTML(f, flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("timeline written to %s\n", *htmlOut)
	}
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-trace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.ReadJSON(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-trace: %s: %v\n", path, err)
		os.Exit(1)
	}
	return tr
}

func summarise(path string, tr *trace.Trace) {
	events := tr.Events()
	byKind := map[string]int{}
	threads := map[uint64]bool{}
	for _, e := range events {
		byKind[e.Kind.String()]++
		threads[uint64(e.Thread)] = true
	}
	fmt.Printf("%s: %d events, %d threads\n", path, len(events), len(threads))
	if len(events) > 0 {
		fmt.Printf("span: %v .. %v\n", events[0].At, events[len(events)-1].At)
	}
	fmt.Printf("consistency hash: %016x\n", tr.ConsistencyHash())
	for _, k := range []string{"admit", "start", "lockacq", "lockrel", "waitbegin", "waitend", "notify", "nestedbegin", "exit", "predicted", "promote", "barrier"} {
		if n := byKind[k]; n > 0 {
			fmt.Printf("  %-12s %d\n", k, n)
		}
	}
}

func compare(a, b *trace.Trace) {
	ha, hb := a.ConsistencyHash(), b.ConsistencyHash()
	if ha == hb {
		fmt.Printf("traces agree: consistency hash %016x\n", ha)
		fmt.Println("(every monitor saw the same critical-section order;")
		fmt.Println(" the runs lead to identical replicated state)")
		return
	}
	fmt.Printf("traces DIVERGE: %016x vs %016x\n", ha, hb)
	if idx, ea, eb, ok := trace.FirstDivergence(a, b); ok {
		fmt.Printf("first differing decision (global order) at index %d:\n", idx)
		fmt.Printf("  a: %v\n  b: %v\n", ea, eb)
	}
	os.Exit(1)
}
