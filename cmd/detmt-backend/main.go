// Command detmt-backend is a standalone external-service stub for the
// nested-invocation boundary: a real TCP process the performing replica
// calls into, with an idempotency cache (performer failover and retries
// cannot double-apply side effects), a pluggable fault switchboard
// driven by detmt-chaos, and a control channel reporting call counters.
//
// The service logic is the benchmark's: echo the argument back (or
// apply -add). What matters is not the computation but the failure
// surface — kill this process, delay it, make it error, and the cluster
// must still agree bit-for-bit.
//
// Usage:
//
//	detmt-backend -listen 127.0.0.1:7200 &
//	detmt-server -id 1 ... -backend 127.0.0.1:7200 &
//	detmt-chaos -target backend -backend 127.0.0.1:7200 -cmd "error-rate 0.2"
//	detmt-chaos -target backend -backend 127.0.0.1:7200 -status
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"detmt/internal/backend"
	"detmt/internal/chaos"
	"detmt/internal/lang"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7200", "TCP address to serve backend invocations on")
	add := flag.Int64("add", 0, "service logic: reply with argument + this (0: echo)")
	cacheSize := flag.Int("cache", 4096, "idempotency cache size (outcomes memoised by call key)")
	seed := flag.Uint64("seed", 1, "fault-injection RNG seed (reproducible chaos soaks)")
	verbose := flag.Bool("v", false, "log connection diagnostics")
	flag.Parse()

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	faults := chaos.NewFaults(*seed)
	delta := *add
	srv, err := backend.NewServer(backend.ServerOptions{
		Listen: *listen,
		Handler: func(_ string, arg lang.Value) (lang.Value, error) {
			if n, ok := arg.(int64); ok && delta != 0 {
				return n + delta, nil
			}
			return arg, nil
		},
		Faults:    faults,
		CacheSize: *cacheSize,
		Logf:      logf,
	})
	if err != nil {
		log.Fatalf("detmt-backend: %v", err)
	}
	log.Printf("detmt-backend: serving on %s (cache %d, seed %d)", srv.Addr(), *cacheSize, *seed)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	st := srv.Stats()
	log.Printf("detmt-backend: shutting down: applies=%v replays=%v cached=%v faults=%v",
		st["applies"], st["replays"], st["cached_keys"], st["faults"])
	srv.Close()
}
