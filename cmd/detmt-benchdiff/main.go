// Command detmt-benchdiff compares two `detmt-bench -json` outputs
// (e.g. the committed BENCH_PR*.json snapshots) metric by metric, in
// the style of benchstat: one row per metric with the before value, the
// after value and the relative change. Lower is better for every
// hot-path metric, so negative deltas are improvements.
//
// Usage:
//
//	detmt-benchdiff before.json after.json
//	scripts/bench.sh -compare before.json after.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type result struct {
	ID      string
	Title   string
	Metrics map[string]float64
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: detmt-benchdiff before.json after.json")
		os.Exit(2)
	}
	before, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-benchdiff: %v\n", err)
		os.Exit(1)
	}
	after, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-benchdiff: %v\n", err)
		os.Exit(1)
	}

	keys := make([]string, 0, len(before)+len(after))
	seen := map[string]bool{}
	for k := range before {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range after {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	fmt.Printf("%-48s %14s %14s %9s\n", "metric", "before", "after", "delta")
	for _, k := range keys {
		b, okB := before[k]
		a, okA := after[k]
		switch {
		case okB && okA:
			fmt.Printf("%-48s %14.1f %14.1f %s\n", k, b, a, delta(b, a))
		case okB:
			fmt.Printf("%-48s %14.1f %14s %9s\n", k, b, "-", "gone")
		default:
			fmt.Printf("%-48s %14s %14.1f %9s\n", k, "-", a, "new")
		}
	}
}

// load flattens one JSON result array into "<id>/<metric>" -> value.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := map[string]float64{}
	for _, r := range results {
		for k, v := range r.Metrics {
			out[r.ID+"/"+k] = v
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no Metrics in any result (old snapshot format?)", path)
	}
	return out, nil
}

func delta(b, a float64) string {
	if b == 0 {
		if a == 0 {
			return "        =0"
		}
		return "       new"
	}
	return fmt.Sprintf("%+8.1f%%", (a-b)/b*100)
}
