// Command detmt-benchdiff compares two `detmt-bench -json` outputs
// (e.g. the committed BENCH_PR*.json snapshots) metric by metric, in
// the style of benchstat: one row per metric with the before value, the
// after value and the relative change. Lower is better for every
// hot-path metric, so negative deltas are improvements.
//
// With -gate it acts as a regression gate instead: each named metric —
// higher is better, e.g. the sequencer throughput ceiling or the
// sharded aggregate ceiling — must not drop more than -max-drop percent
// from the baseline (first file) to the current run (second file), or
// the process exits non-zero. Several metrics gate in one invocation as
// a comma-separated list; every key is checked even after one fails. A
// key missing from either file also fails: a gate that silently passes
// because the metric vanished is no gate.
//
// Usage:
//
//	detmt-benchdiff before.json after.json
//	detmt-benchdiff -gate ceiling/ceiling_rps -max-drop 10 BENCH_PR7.json current.json
//	detmt-benchdiff -gate ceiling/ceiling_rps,sharded_ceiling/aggregate_ceiling_rps BENCH_PR8.json current.json
//	scripts/bench.sh -compare before.json after.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type result struct {
	ID      string
	Title   string
	Metrics map[string]float64
}

func main() {
	gate := flag.String("gate", "", "gate mode: comma-separated '<id>/<metric>' keys that must not regress (higher is better)")
	maxDrop := flag.Float64("max-drop", 10, "gate mode: maximum tolerated drop in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: detmt-benchdiff [-gate id/metric -max-drop pct] before.json after.json")
		os.Exit(2)
	}
	before, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-benchdiff: %v\n", err)
		os.Exit(1)
	}
	after, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-benchdiff: %v\n", err)
		os.Exit(1)
	}

	if *gate != "" {
		code := 0
		for _, key := range strings.Split(*gate, ",") {
			key = strings.TrimSpace(key)
			if key == "" {
				continue
			}
			if c := runGate(before, after, key, *maxDrop); c != 0 {
				code = c
			}
		}
		os.Exit(code)
	}

	keys := make([]string, 0, len(before)+len(after))
	seen := map[string]bool{}
	for k := range before {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range after {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	fmt.Printf("%-48s %14s %14s %9s\n", "metric", "before", "after", "delta")
	for _, k := range keys {
		b, okB := before[k]
		a, okA := after[k]
		switch {
		case okB && okA:
			fmt.Printf("%-48s %14.1f %14.1f %s\n", k, b, a, delta(b, a))
		case okB:
			fmt.Printf("%-48s %14.1f %14s %9s\n", k, b, "-", "gone")
		default:
			fmt.Printf("%-48s %14s %14.1f %9s\n", k, "-", a, "new")
		}
	}
}

// runGate checks one higher-is-better metric against the tolerated drop
// and returns the process exit code.
func runGate(before, after map[string]float64, key string, maxDrop float64) int {
	b, okB := before[key]
	a, okA := after[key]
	if !okB || !okA {
		fmt.Fprintf(os.Stderr, "detmt-benchdiff: gate %s: metric missing (baseline: %v, current: %v)\n", key, okB, okA)
		return 1
	}
	if b <= 0 {
		fmt.Fprintf(os.Stderr, "detmt-benchdiff: gate %s: non-positive baseline %.1f\n", key, b)
		return 1
	}
	drop := (b - a) / b * 100
	if drop > maxDrop {
		fmt.Fprintf(os.Stderr, "detmt-benchdiff: gate %s REGRESSED: baseline %.1f -> current %.1f (%.1f%% drop > %.1f%% tolerated)\n",
			key, b, a, drop, maxDrop)
		return 1
	}
	fmt.Printf("gate %s OK: baseline %.1f -> current %.1f (%+.1f%%, tolerance %.1f%%)\n",
		key, b, a, (a-b)/b*100, maxDrop)
	return 0
}

// load flattens one JSON result array into "<id>/<metric>" -> value.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := map[string]float64{}
	for _, r := range results {
		for k, v := range r.Metrics {
			out[r.ID+"/"+k] = v
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no Metrics in any result (old snapshot format?)", path)
	}
	return out, nil
}

func delta(b, a float64) string {
	if b == 0 {
		if a == 0 {
			return "        =0"
		}
		return "       new"
	}
	return fmt.Sprintf("%+8.1f%%", (a-b)/b*100)
}
