package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"1,2,4", []int{1, 2, 4}, false},
		{" 8 , 16 ", []int{8, 16}, false},
		{"1,,2", []int{1, 2}, false},
		{"", nil, true},
		{"a", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
	}
	for _, c := range cases {
		got, err := parseInts(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseInts(%q) error = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
