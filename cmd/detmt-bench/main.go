// Command detmt-bench regenerates the figures and tables of the paper's
// evaluation (see DESIGN.md's experiment index). Each experiment runs on
// deterministic virtual-clock simulations and prints its series as text.
//
// Usage:
//
//	detmt-bench -experiment fig1 -clients 1,2,4,8,16,32,48 -requests 4
//	detmt-bench -experiment all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"detmt/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: fig1, fig1tput, fig2, fig3, fig4, table1, wan, overhead, pds, replay, determinism, advisor, scaling, scenarios, hotpath, earlysched, recovery, openloop, ceiling, sharded, kvfacade (real sockets, not in 'all'), or all")
	clients := flag.String("clients", "1,2,4,8,16,32,48", "client counts for the fig1 sweep")
	requests := flag.Int("requests", 4, "requests per client")
	seed := flag.Uint64("seed", 1, "workload seed")
	duration := flag.Duration("duration", 0,
		"openloop/ceiling: measured window per run (0: experiment default 1.5s)")
	warmup := flag.Duration("warmup", 0,
		"openloop/ceiling: warmup before each measured window (0: experiment default 300ms)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-bench: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "detmt-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "detmt-bench: write heap profile: %v\n", err)
			}
		}()
	}

	opts := harness.DefaultFig1Options()
	opts.Sim.RequestsPerClient = *requests
	opts.Sim.Seed = *seed
	if cs, err := parseInts(*clients); err != nil {
		fmt.Fprintf(os.Stderr, "detmt-bench: bad -clients: %v\n", err)
		os.Exit(2)
	} else {
		opts.Clients = cs
	}

	// Comma-separated experiment lists run in order and concatenate
	// their results into one array (e.g. -experiment openloop,ceiling
	// for the committed throughput snapshot).
	var results []harness.Result
	for _, name := range strings.Split(*experiment, ",") {
		results = append(results, runExperiment(strings.TrimSpace(name), opts, *duration, *warmup)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range results {
		fmt.Printf("==== %s: %s ====\n\n%s\n", r.ID, r.Title, r.Text)
	}
}

func runExperiment(name string, opts harness.Fig1Options, duration, warmup time.Duration) []harness.Result {
	switch name {
	case "fig1":
		return []harness.Result{harness.Fig1(opts)}
	case "fig1tput":
		return []harness.Result{harness.Fig1Throughput(opts)}
	case "fig2":
		return []harness.Result{harness.Fig2()}
	case "fig3":
		return []harness.Result{harness.Fig3()}
	case "fig4":
		return []harness.Result{harness.Fig4()}
	case "table1":
		return []harness.Result{harness.Comparison()}
	case "wan":
		return []harness.Result{harness.WanSweep()}
	case "overhead":
		return []harness.Result{harness.PredictionOverhead()}
	case "pds":
		return []harness.Result{harness.PDSDummies()}
	case "replay":
		return []harness.Result{harness.Replay()}
	case "determinism":
		return []harness.Result{harness.Determinism()}
	case "advisor":
		return []harness.Result{harness.Advisor()}
	case "scaling":
		return []harness.Result{harness.ReplicaScaling()}
	case "scenarios":
		return []harness.Result{harness.Scenarios()}
	case "hotpath":
		return []harness.Result{harness.HotPath()}
	case "earlysched":
		return []harness.Result{harness.EarlySched(harness.DefaultEarlySchedOptions())}
	case "recovery":
		return []harness.Result{harness.Recovery()}
	case "openloop":
		oo := harness.DefaultOpenLoopOptions()
		oo.Duration, oo.Warmup = duration, warmup
		return []harness.Result{harness.OpenLoop(oo)}
	case "ceiling":
		oo := harness.DefaultOpenLoopOptions()
		oo.Duration, oo.Warmup = duration, warmup
		return []harness.Result{harness.Ceiling(oo)}
	case "sharded":
		so := harness.DefaultShardedOptions()
		so.Duration, so.Warmup = duration, warmup
		return []harness.Result{harness.Sharded(so)}
	case "kvfacade":
		ko := harness.DefaultKVFacadeOptions()
		ko.Duration, ko.Warmup = duration, warmup
		return []harness.Result{harness.KVFacade(ko)}
	case "all":
		return harness.All()
	default:
		fmt.Fprintf(os.Stderr, "detmt-bench: unknown experiment %q\n", name)
		os.Exit(2)
		return nil
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
