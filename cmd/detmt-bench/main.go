// Command detmt-bench regenerates the figures and tables of the paper's
// evaluation (see DESIGN.md's experiment index). Each experiment runs on
// deterministic virtual-clock simulations and prints its series as text.
//
// Usage:
//
//	detmt-bench -experiment fig1 -clients 1,2,4,8,16,32,48 -requests 4
//	detmt-bench -experiment all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"detmt/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: fig1, fig1tput, fig2, fig3, fig4, table1, wan, overhead, pds, replay, determinism, advisor, scaling, scenarios, hotpath, earlysched, recovery (real sockets, not in 'all'), or all")
	clients := flag.String("clients", "1,2,4,8,16,32,48", "client counts for the fig1 sweep")
	requests := flag.Int("requests", 4, "requests per client")
	seed := flag.Uint64("seed", 1, "workload seed")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-bench: start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "detmt-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "detmt-bench: write heap profile: %v\n", err)
			}
		}()
	}

	opts := harness.DefaultFig1Options()
	opts.Sim.RequestsPerClient = *requests
	opts.Sim.Seed = *seed
	if cs, err := parseInts(*clients); err != nil {
		fmt.Fprintf(os.Stderr, "detmt-bench: bad -clients: %v\n", err)
		os.Exit(2)
	} else {
		opts.Clients = cs
	}

	var results []harness.Result
	switch *experiment {
	case "fig1":
		results = []harness.Result{harness.Fig1(opts)}
	case "fig1tput":
		results = []harness.Result{harness.Fig1Throughput(opts)}
	case "fig2":
		results = []harness.Result{harness.Fig2()}
	case "fig3":
		results = []harness.Result{harness.Fig3()}
	case "fig4":
		results = []harness.Result{harness.Fig4()}
	case "table1":
		results = []harness.Result{harness.Comparison()}
	case "wan":
		results = []harness.Result{harness.WanSweep()}
	case "overhead":
		results = []harness.Result{harness.PredictionOverhead()}
	case "pds":
		results = []harness.Result{harness.PDSDummies()}
	case "replay":
		results = []harness.Result{harness.Replay()}
	case "determinism":
		results = []harness.Result{harness.Determinism()}
	case "advisor":
		results = []harness.Result{harness.Advisor()}
	case "scaling":
		results = []harness.Result{harness.ReplicaScaling()}
	case "scenarios":
		results = []harness.Result{harness.Scenarios()}
	case "hotpath":
		results = []harness.Result{harness.HotPath()}
	case "earlysched":
		results = []harness.Result{harness.EarlySched(harness.DefaultEarlySchedOptions())}
	case "recovery":
		results = []harness.Result{harness.Recovery()}
	case "all":
		results = harness.All()
	default:
		fmt.Fprintf(os.Stderr, "detmt-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range results {
		fmt.Printf("==== %s: %s ====\n\n%s\n", r.ID, r.Title, r.Text)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive integer", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
