// Command detmt-server hosts one detmt replica over real TCP — the
// deployment mode that takes the system out of the simulator. Start one
// process per member with the boot membership; the lowest replica id
// starts as the sequencer and runs the stamped sequencing tick loop
// that keeps every member's virtual schedule identical. If the
// sequencer dies, the survivors elect the lowest live id into the next
// sequencing view; a killed replica — sequencer included — rejoins with
// -recover. The membership itself can change at runtime: -join grows a
// live cluster by one member (catch up as a learner, flip to voter at
// an agreed slot), and `detmt-chaos -member "remove <id>"` (or
// add/replace) reconfigures it from outside.
//
// Usage (3-replica loopback cluster):
//
//	detmt-server -id 1 -listen 127.0.0.1:7101 -peers 2=127.0.0.1:7102,3=127.0.0.1:7103 &
//	detmt-server -id 2 -listen 127.0.0.1:7102 -peers 1=127.0.0.1:7101,3=127.0.0.1:7103 &
//	detmt-server -id 3 -listen 127.0.0.1:7103 -peers 1=127.0.0.1:7101,2=127.0.0.1:7102 &
//	detmt-load -servers 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 -clients 4 -requests 8
//
// Sharded mode (-shards N) hosts one tenant replica per shard in this
// process: -listen becomes the BASE address (shard k listens at base
// port + k), every member derives the same consistent-hash ring from
// the base addresses, and -xshard additionally routes nested calls into
// the next shard through per-shard gateways (hosted by the lowest
// member at base port + N + k). A single process is a whole sharded
// cluster:
//
//	detmt-server -shards 4 -xshard -listen 127.0.0.1:7200 &
//	detmt-load -shards -servers 1=127.0.0.1:7200 -clients 4 -requests 8
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"detmt/internal/chaos"
	"detmt/internal/ids"
	"detmt/internal/member"
	"detmt/internal/replica"
	"detmt/internal/server"
	"detmt/internal/workload"
)

func main() {
	id := flag.Int("id", 1, "this replica's id (must appear in the membership)")
	listen := flag.String("listen", "127.0.0.1:7101", "TCP address to accept peer and client connections on")
	peers := flag.String("peers", "", "other members as id=addr,id=addr,... (static membership)")
	scheduler := flag.String("scheduler", "MAT", "scheduler kind: SEQ, SAT, LSA, PDS, MAT, MAT+LLA, or PMAT")
	nested := flag.Duration("nested", 12*time.Millisecond, "virtual duration of the nested external call")
	backendAddr := flag.String("backend", "", "address of a detmt-backend process serving nested invocations (empty: in-process echo)")
	nestedTimeout := flag.Duration("nested-timeout", 0, "per-attempt deadline against the backend (0: 2s)")
	nestedRetries := flag.Int("nested-retries", 0, "backend retries after a failed attempt (0: 2, negative: none)")
	nestedBackoff := flag.Duration("nested-backoff", 0, "initial retry backoff, doubling capped at 500ms (0: 25ms)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive backend failures that trip the circuit breaker (0: 5, negative: never)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before probing the backend again (0: 2s)")
	catchNested := flag.Bool("catch-nested", false, "workload catches failed nested calls (iserr) instead of aborting the request")
	tick := flag.Duration("tick", 2*time.Millisecond, "sequencing tick interval (virtual = wall)")
	budget := flag.Duration("budget", 5*time.Millisecond, "delivery-deadline budget per sequenced message")
	adaptiveTick := flag.Bool("adaptive-tick", false,
		"load-responsive tick sizing: drain early when the forward queue crosses -batch-threshold, stretch toward -max-tick when idle")
	minTick := flag.Duration("min-tick", 0, "adaptive tick floor (0: tick/4)")
	maxTick := flag.Duration("max-tick", 0, "adaptive idle-tick ceiling (0: 4*tick)")
	batchThreshold := flag.Int("batch-threshold", 0, "queued forwards that trigger an early adaptive drain (0: 64)")
	noGroupCommit := flag.Bool("no-group-commit", false,
		"disable group commit: one wire frame per sequenced envelope instead of one per tick (measurement baseline)")
	pipelineDepth := flag.Int("pipeline-depth", 0,
		"per-sender decode pipeline depth decoupling frame decode from apply (0: default 512, negative: inline decode)")
	pdsWindow := flag.Int("pds-window", 4, "PDS pool size")
	pdsRelaxed := flag.Bool("pds-relaxed", false, "relax the PDS full-pool barrier")
	checkpointEvery := flag.Int("checkpoint-every", 0, "broadcast a state checkpoint every N requests (0: never)")
	iterations := flag.Int("iterations", 10, "Fig. 1 loop iterations per request")
	mutexes := flag.Int("mutexes", 100, "Fig. 1 mutex set size")
	earlySched := flag.Bool("early-sched", false,
		"conflict-class early scheduling: sequencer stamps conflict classes, replica runs class-parallel lanes (MAT, MAT+LLA or PDS)")
	lanes := flag.Int("lanes", 4, "early-scheduling classifier lane count")
	families := flag.Int("families", 0,
		"host the family-partitioned low-conflict workload with this many disjoint families instead of Fig. 1 (0: Fig. 1; all members and detmt-load must agree)")
	kvFlag := flag.Bool("kv", false,
		"host the replicated key-value object instead of Fig. 1 (serve it with detmt-gateway; excludes -families and -xshard)")
	kvBuckets := flag.Int("kv-buckets", 0, "KV lock-bucket count (0: default; all members must agree)")
	conflict := flag.Float64("conflict", 0,
		"family workload: probability a request crosses all families (escalates to the global class)")
	hotSkew := flag.Float64("hot-skew", 0,
		"family workload: hot-key skew towards each family's first monitor (0: uniform)")
	traceRetention := flag.Int("trace-retention", 0,
		"max trace events kept in memory (0: default bound, negative: unlimited); hashes stay exact over full history")
	dataDir := flag.String("data", "", "directory for checkpoints and the restart-epoch counter (empty: in-memory only)")
	recoverFlag := flag.Bool("recover", false, "rejoin the running cluster via checkpoint + tail transfer (any role, including a deposed sequencer)")
	join := flag.String("join", "",
		"join a LIVE cluster as a NEW member: fetch the membership from this address, start as a catch-up learner, and propose our own AddReplica through the total order (excludes -peers and -shards)")
	epoch := flag.Uint64("epoch", 0, "restart epoch override (0: derive from -data, or legacy epoch-less mode without it)")
	seqRetention := flag.Int("seq-retention", 0,
		"sequenced envelopes retained to serve rejoiners (0: default, negative: unlimited)")
	gossip := flag.Duration("gossip", 0, "divergence-gossip interval (0: default 250ms, negative: disabled)")
	detectTimeout := flag.Duration("detect-timeout", 0,
		"sequencer-silence window of the failure detector (0: default 50ms); raise on flaky links so short partitions never depose a live sequencer")
	shards := flag.Int("shards", 0,
		"host one tenant replica per shard in this process (-listen is the BASE address: shard k listens at base port + k; 0: single-group mode)")
	xshard := flag.Bool("xshard", false,
		"route nested calls into the NEXT shard through per-shard gateways on the lowest member (requires -shards; excludes -backend)")
	ringSeed := flag.Uint64("ring-seed", 0, "consistent-hash ring seed (must agree across members)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the ring (0: default)")
	chaosOn := flag.Bool("chaos", false, "expose the chaos fault-injection control channel (see detmt-chaos)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty: off)")
	verbose := flag.Bool("v", false, "log transport diagnostics")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the /debug/pprof handlers via the
			// net/http/pprof import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("detmt-server: pprof server: %v", err)
			}
		}()
	}

	peerMap, err := parsePeers(*peers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-server: bad -peers: %v\n", err)
		os.Exit(2)
	}
	if *join != "" {
		if *peers != "" || *shards > 0 {
			fmt.Fprintln(os.Stderr, "detmt-server: -join excludes -peers and -shards (the live cluster IS the membership)")
			os.Exit(2)
		}
		// Discover the current voters from the live cluster; they become
		// this learner's boot peer set.
		snap, err := server.FetchMembership(*join, 5*time.Second, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-server: -join %s: %v\n", *join, err)
			os.Exit(1)
		}
		for _, m := range snap.Voters {
			if m.ID == ids.ReplicaID(*id) {
				fmt.Fprintf(os.Stderr, "detmt-server: -join: id %d is already a voter at %s (use -recover to rejoin)\n", *id, *join)
				os.Exit(2)
			}
			peerMap[m.ID] = m.Addr
		}
	}
	kind := replica.SchedulerKind(*scheduler)
	known := false
	for _, k := range replica.AllKinds() {
		if k == kind {
			known = true
		}
	}
	if !known {
		fmt.Fprintf(os.Stderr, "detmt-server: unknown scheduler %q (want one of %v)\n", *scheduler, replica.AllKinds())
		os.Exit(2)
	}
	wl := workload.DefaultFig1()
	wl.Iterations = *iterations
	wl.Mutexes = *mutexes
	wl.CatchNested = *catchNested
	var fam *workload.FamilyConfig
	if *families > 0 {
		f := workload.DefaultFamilies()
		f.Families = *families
		f.PGlobal = *conflict
		f.HotSkew = *hotSkew
		fam = &f
	}
	var kv *workload.KVConfig
	if *kvFlag {
		k := workload.DefaultKV()
		if *kvBuckets > 0 {
			k.Buckets = *kvBuckets
		}
		kv = &k
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	var inj *chaos.Injector
	opts := server.Options{
		ID:               ids.ReplicaID(*id),
		Listen:           *listen,
		Peers:            peerMap,
		Scheduler:        kind,
		Workload:         wl,
		NestedLatency:    *nested,
		Backend:          *backendAddr,
		NestedTimeout:    *nestedTimeout,
		NestedRetries:    *nestedRetries,
		NestedBackoff:    *nestedBackoff,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Tick:             *tick,
		Budget:           *budget,
		AdaptiveTick:     *adaptiveTick,
		MinTick:          *minTick,
		MaxTick:          *maxTick,
		BatchThreshold:   *batchThreshold,
		NoGroupCommit:    *noGroupCommit,
		PipelineDepth:    *pipelineDepth,
		PDSWindow:        *pdsWindow,
		PDSRelaxed:       *pdsRelaxed,
		CheckpointEvery:  *checkpointEvery,
		Families:         fam,
		KV:               kv,
		EarlySched:       *earlySched,
		Lanes:            *lanes,
		TraceRetention:   *traceRetention,
		DataDir:          *dataDir,
		Recover:          *recoverFlag,
		Learner:          *join != "",
		Epoch:            *epoch,
		SeqRetention:     *seqRetention,
		DetectTimeout:    *detectTimeout,
		GossipInterval:   *gossip,
		Logf:             logf,
	}
	if *chaosOn {
		inj = chaos.New()
		opts.Dial = inj.Dial(nil)
		opts.OnChaos = func(cmd string) []byte { return chaos.Handle(inj, cmd) }
	}
	mode := "fresh"
	if *recoverFlag {
		mode = "recovering"
	}

	// Sharded mode: one tenant replica per shard in this process, ports
	// derived from the base address (see server.MultiOptions).
	if *shards > 0 {
		multi, err := server.NewMulti(server.MultiOptions{
			Template: opts,
			Shards:   *shards,
			RingSeed: *ringSeed,
			VNodes:   *vnodes,
			XShard:   *xshard,
			EpochDir: *dataDir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-server: %v\n", err)
			os.Exit(1)
		}
		ringHash, _ := multi.Ring().Hash()
		log.Printf("detmt-server: member %d (%s, %s) hosting %d shard(s) from base %s, ring %016x, xshard=%v",
			*id, *scheduler, mode, multi.Tenants(), *listen, ringHash, *xshard)

		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		<-sigc
		for _, st := range multi.Status().Shards {
			log.Printf("detmt-server: shard %s shutting down: completed=%d hash=%x state=%d view=%d seq=%v",
				st.Shard, st.Completed, st.Hash, st.State, st.View, st.Sequencer)
			if m := st.Membership; m != nil {
				log.Printf("detmt-server: shard %s membership: epoch=%d config=%s voters=%d learners=%d pending=%d",
					st.Shard, m.Epoch, m.Hash, len(m.Voters), len(m.Learners), len(m.Pending))
			}
		}
		for k := 0; k < multi.Tenants(); k++ {
			if gw := multi.Gateway(k); gw != nil {
				stats := gw.Backend().Stats()
				log.Printf("detmt-server: gateway %s totals: applies=%v replays=%v by-prefix=%v",
					"g"+strconv.Itoa(k), stats["applies"], stats["replays"], stats["applies_by_prefix"])
			}
		}
		multi.Close()
		return
	}
	if *xshard {
		fmt.Fprintln(os.Stderr, "detmt-server: -xshard requires -shards")
		os.Exit(2)
	}

	srv, err := server.New(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-server: %v\n", err)
		os.Exit(1)
	}
	if *join != "" {
		mode = "joining"
		// Propose our own AddReplica through a live member: it rides the
		// total order, every voter starts fanning out to us as a learner,
		// and we flip to voter at the activation slot. A rejected proposal
		// (e.g. a restart racing its own earlier Add) is not fatal —
		// recovery adopts whatever membership the cluster agreed on.
		ch := member.Change{Kind: member.Add, ID: ids.ReplicaID(*id), Addr: srv.Addr()}
		if err := server.ProposeChangeAt(*join, ch, 10*time.Second, nil, nil); err != nil {
			log.Printf("detmt-server: join proposal: %v (continuing as learner)", err)
		}
	}
	log.Printf("detmt-server: replica %d (%s, %s) listening on %s, %d peer(s)",
		*id, *scheduler, mode, srv.Addr(), len(peerMap))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	st := srv.Status()
	log.Printf("detmt-server: shutting down: completed=%d hash=%x state=%d recovery=%s last-ckpt=%d view=%d seq=%v",
		st.Completed, st.Hash, st.State, st.Recovery, st.LastCheckpointSeq, st.View, st.Sequencer)
	if m := st.Membership; m != nil {
		log.Printf("detmt-server: membership: epoch=%d config=%s voters=%d learners=%d pending=%d",
			m.Epoch, m.Hash, len(m.Voters), len(m.Learners), len(m.Pending))
	}
	if c := st.Classes; c != nil {
		log.Printf("detmt-server: earlysched totals: active_classes=%d escalations=%d merge_stalls=%d parallel=%d serial=%d parallel_ratio=%.2f",
			c.ActiveClasses, c.Escalations, c.MergeStalls, c.ParallelCommits, c.SerialCommits, c.ParallelRatio)
	}
	if *backendAddr != "" {
		n := st.Nested
		log.Printf("detmt-server: backend totals: performed=%d retries=%d app-errors=%d timeouts=%d fast-fails=%d re-performed=%d breaker=%s trips=%d",
			n.Performed, n.Retries, n.AppErrors, n.Timeouts, n.FastFails, n.RePerformed, n.BreakerState, n.BreakerTrips)
	}
	if inj != nil {
		sev, blocked := inj.Stats()
		log.Printf("detmt-server: chaos totals: severed=%d dials-blocked=%d", sev, blocked)
	}
	srv.Close()
}

func parsePeers(s string) (map[ids.ReplicaID]string, error) {
	out := map[ids.ReplicaID]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("%q is not id=addr", part)
		}
		n, err := strconv.Atoi(kv[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive replica id", kv[0])
		}
		if _, dup := out[ids.ReplicaID(n)]; dup {
			return nil, fmt.Errorf("replica id %d listed twice", n)
		}
		out[ids.ReplicaID(n)] = kv[1]
	}
	return out, nil
}
