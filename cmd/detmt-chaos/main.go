// Command detmt-chaos is the fault-injection controller for a running
// detmt-server cluster. Servers started with -chaos expose their chaos
// injector on the control channel; this tool sends it commands — one
// shot (-cmd) or a seeded random plan (-plan) — and can poll replica
// status (-status), including the recovery state and divergence
// diagnostics the crash-recovery subsystem reports.
//
// Usage:
//
//	detmt-chaos -servers 1=127.0.0.1:7101,2=127.0.0.1:7102 -cmd sever
//	detmt-chaos -servers ... -target 2 -cmd "delay 5ms"
//	detmt-chaos -servers ... -target-role sequencer -cmd sever
//	detmt-chaos -servers ... -plan -seed 7 -duration 30s
//	detmt-chaos -servers ... -status
//
// It is also the membership controller: -member proposes runtime
// reconfiguration (the change rides the total order and activates on
// every replica at the same slot) or prints the agreed configuration:
//
//	detmt-chaos -servers ... -member "add 4=127.0.0.1:7104"
//	detmt-chaos -servers ... -member "remove 1"
//	detmt-chaos -servers ... -member "replace 2 5=127.0.0.1:7105"
//	detmt-chaos -servers ... -member status
//
// With -target backend it drives a detmt-backend process instead — the
// external-service side of the nested-invocation boundary:
//
//	detmt-chaos -target backend -backend 127.0.0.1:7200 -cmd "error-rate 0.2"
//	detmt-chaos -target backend -backend 127.0.0.1:7200 -cmd down
//	detmt-chaos -target backend -backend 127.0.0.1:7200 -status
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"detmt/internal/backend"
	"detmt/internal/ids"
	"detmt/internal/member"
	"detmt/internal/shard"
	"detmt/internal/wire"
)

func main() {
	servers := flag.String("servers", "", "cluster members as id=addr,id=addr,...")
	targetFlag := flag.String("target", "0", `replica id to address (0: all listed servers), or "backend" to drive a detmt-backend process (see -backend)`)
	backendAddr := flag.String("backend", "", `detmt-backend address used with -target backend`)
	targetRole := flag.String("target-role", "", `resolve the target by role instead of id: "sequencer" polls status and targets the current view's sequencer`)
	cmd := flag.String("cmd", "", `one-shot chaos command: sever, "block <addr>", "unblock <addr>", "delay <dur>", heal, stats`)
	memberCmd := flag.String("member", "",
		`membership verb: "add <id>=<addr>", "remove <id>", "replace <old> <new>=<addr>", or "status" (proposals ride the total order and activate on every replica at the same slot)`)
	status := flag.Bool("status", false, "print each replica's status (recovery state, checkpoint age, diagnostics)")
	plan := flag.Bool("plan", false, "drive a seeded random fault plan instead of a one-shot command")
	seed := flag.Uint64("seed", 1, "plan seed (same seed + step count = same fault schedule)")
	duration := flag.Duration("duration", 30*time.Second, "how long to run the plan")
	step := flag.Duration("step", 250*time.Millisecond, "interval between plan fault decisions")
	pSever := flag.Float64("sever", 0.2, "per-step probability of a sever on a random replica")
	pDelay := flag.Float64("delay", 0.3, "per-step probability of a one-step read delay on a random replica")
	delayBy := flag.Duration("delay-by", 5*time.Millisecond, "read delay applied when the delay fault fires")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request control timeout")
	shardFlag := flag.Int("shard", -1,
		"address shard k of a multi-tenant deployment: -servers lists BASE addresses and each is offset to base port + k (negative: addresses are literal)")
	flag.Parse()

	if *targetFlag == "backend" {
		runBackendTarget(*backendAddr, *cmd, *status, *timeout)
		return
	}
	target := new(int)
	if n, err := strconv.Atoi(*targetFlag); err == nil && n >= 0 {
		*target = n
	} else {
		fmt.Fprintf(os.Stderr, "detmt-chaos: bad -target %q (want a replica id or \"backend\")\n", *targetFlag)
		os.Exit(2)
	}

	serverMap, err := parseServers(*servers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-chaos: bad -servers: %v\n", err)
		os.Exit(2)
	}
	if *shardFlag >= 0 {
		for id, base := range serverMap {
			addr, err := shard.OffsetAddr(base, *shardFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "detmt-chaos: -shard %d: %v\n", *shardFlag, err)
				os.Exit(2)
			}
			serverMap[id] = addr
		}
	}
	tr, err := wire.NewTCP(wire.Options{Name: "chaos-ctl", Peers: serverMap})
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-chaos: %v\n", err)
		os.Exit(1)
	}
	defer tr.Close()

	if *targetRole != "" {
		if *targetRole != "sequencer" {
			fmt.Fprintf(os.Stderr, "detmt-chaos: unknown -target-role %q (supported: sequencer)\n", *targetRole)
			os.Exit(2)
		}
		if *target != 0 {
			fmt.Fprintln(os.Stderr, "detmt-chaos: -target and -target-role are mutually exclusive")
			os.Exit(2)
		}
		seq, err := resolveSequencer(tr, serverMap, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-chaos: resolving sequencer: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("target-role sequencer resolved to %v\n", seq)
		*target = int(seq)
	}

	targets := make([]ids.ReplicaID, 0, len(serverMap))
	for id := range serverMap {
		if *target == 0 || id == ids.ReplicaID(*target) {
			targets = append(targets, id)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "detmt-chaos: -target %d is not in -servers\n", *target)
		os.Exit(2)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	send := func(id ids.ReplicaID, req string) {
		b, err := tr.Control(id, []byte(req), *timeout)
		if err != nil {
			fmt.Printf("%v: ERROR %v\n", id, err)
			return
		}
		fmt.Printf("%v: %s\n", id, strings.TrimSpace(string(b)))
	}

	switch {
	case *memberCmd != "":
		runMemberVerb(send, targets, *memberCmd)
	case *status:
		for _, id := range targets {
			send(id, "status")
		}
	case *cmd != "":
		for _, id := range targets {
			send(id, "chaos "+*cmd)
		}
	case *plan:
		runPlan(send, targets, *seed, *duration, *step, *pSever, *pDelay, *delayBy)
	default:
		fmt.Fprintln(os.Stderr, "detmt-chaos: nothing to do (want -cmd, -member, -plan, or -status)")
		os.Exit(2)
	}
}

// runMemberVerb parses one membership verb and routes it: "status"
// prints every target's membership snapshot (epoch, config hash, voters,
// learners, pending changes); the mutating verbs are proposed through
// the FIRST target only — the proposal rides the total order, so one
// entry point reconfigures the whole cluster.
func runMemberVerb(send func(ids.ReplicaID, string), targets []ids.ReplicaID, verb string) {
	fields := strings.Fields(verb)
	if len(fields) == 0 {
		fmt.Fprintln(os.Stderr, `detmt-chaos: empty -member verb`)
		os.Exit(2)
	}
	if fields[0] == "status" {
		for _, id := range targets {
			send(id, "members")
		}
		return
	}
	var ch member.Change
	bad := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "detmt-chaos: -member: "+format+"\n", args...)
		os.Exit(2)
	}
	switch fields[0] {
	case "add":
		if len(fields) != 2 {
			bad(`want "add <id>=<addr>"`)
		}
		id, addr, err := parseIDAddr(fields[1])
		if err != nil {
			bad("%v", err)
		}
		ch = member.Change{Kind: member.Add, ID: id, Addr: addr}
	case "remove":
		if len(fields) != 2 {
			bad(`want "remove <id>"`)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			bad("%q is not a positive replica id", fields[1])
		}
		ch = member.Change{Kind: member.Remove, ID: ids.ReplicaID(n)}
	case "replace":
		if len(fields) != 3 {
			bad(`want "replace <old> <new>=<addr>"`)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			bad("%q is not a positive replica id", fields[1])
		}
		id, addr, err := parseIDAddr(fields[2])
		if err != nil {
			bad("%v", err)
		}
		ch = member.Change{Kind: member.Replace, ID: ids.ReplicaID(n), NewID: id, Addr: addr}
	default:
		bad("unknown verb %q (want add, remove, replace, or status)", fields[0])
	}
	blob, err := json.Marshal(ch)
	if err != nil {
		bad("%v", err)
	}
	send(targets[0], "memberchange "+string(blob))
}

// parseIDAddr splits one "<id>=<addr>" operand.
func parseIDAddr(s string) (ids.ReplicaID, string, error) {
	kv := strings.SplitN(s, "=", 2)
	if len(kv) != 2 || kv[1] == "" {
		return 0, "", fmt.Errorf("%q is not <id>=<addr>", s)
	}
	n, err := strconv.Atoi(kv[0])
	if err != nil || n <= 0 {
		return 0, "", fmt.Errorf("%q is not a positive replica id", kv[0])
	}
	return ids.ReplicaID(n), kv[1], nil
}

// runBackendTarget drives a detmt-backend process over its own control
// channel: -status prints the raw server stats JSON (call counters,
// idempotency cache, fault knobs), -cmd routes a fault command
// (error-rate/delay/down/up/heal/stats) to its chaos switchboard.
func runBackendTarget(addr, cmd string, status bool, timeout time.Duration) {
	if addr == "" {
		fmt.Fprintln(os.Stderr, `detmt-chaos: -target backend needs -backend <addr>`)
		os.Exit(2)
	}
	req := ""
	switch {
	case status:
		req = "status"
	case cmd != "":
		req = "chaos " + cmd
	default:
		fmt.Fprintln(os.Stderr, "detmt-chaos: nothing to do (want -cmd or -status)")
		os.Exit(2)
	}
	b, err := backend.Control(addr, req, timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detmt-chaos: backend %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Printf("backend %s: %s\n", addr, strings.TrimSpace(string(b)))
}

// runPlan draws one fault per step from a seeded RNG and sends it to a
// random target, healing one-step delays on the following step. All
// injected faults are healed before returning.
func runPlan(send func(ids.ReplicaID, string), targets []ids.ReplicaID,
	seed uint64, duration, step time.Duration, pSever, pDelay float64, delayBy time.Duration) {
	rng := ids.NewRNG(seed)
	ticker := time.NewTicker(step)
	defer ticker.Stop()
	stopAt := time.Now().Add(duration)
	var delayed []ids.ReplicaID
	steps, faults := 0, 0
	for time.Now().Before(stopAt) {
		<-ticker.C
		steps++
		for _, id := range delayed {
			send(id, "chaos delay 0s")
		}
		delayed = delayed[:0]
		victim := targets[rng.Intn(len(targets))]
		switch {
		case rng.Bool(pSever):
			send(victim, "chaos sever")
			faults++
		case rng.Bool(pDelay):
			send(victim, fmt.Sprintf("chaos delay %s", delayBy))
			delayed = append(delayed, victim)
			faults++
		}
	}
	for _, id := range targets {
		send(id, "chaos heal")
	}
	log.Printf("detmt-chaos: plan done: %d steps, %d faults injected", steps, faults)
}

// resolveSequencer polls every listed server's status and returns the
// sequencer of the highest view any of them reports. Unreachable servers
// are skipped (the sequencer may be the replica someone just killed);
// at least one must answer.
func resolveSequencer(tr *wire.TCP, serverMap map[ids.ReplicaID]string, timeout time.Duration) (ids.ReplicaID, error) {
	var (
		best     ids.ReplicaID
		bestView uint64
		answered bool
	)
	for id := range serverMap {
		b, err := tr.Control(id, []byte("status"), timeout)
		if err != nil {
			continue
		}
		var st struct {
			View      uint64        `json:"view"`
			Sequencer ids.ReplicaID `json:"sequencer"`
		}
		if json.Unmarshal(b, &st) != nil || st.Sequencer <= 0 {
			continue
		}
		if !answered || st.View > bestView {
			best, bestView, answered = st.Sequencer, st.View, true
		}
	}
	if !answered {
		return 0, fmt.Errorf("no server reported a sequencer")
	}
	if _, ok := serverMap[best]; !ok {
		return 0, fmt.Errorf("reported sequencer %v is not in -servers", best)
	}
	return best, nil
}

func parseServers(s string) (map[ids.ReplicaID]string, error) {
	out := map[ids.ReplicaID]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("%q is not id=addr", part)
		}
		n, err := strconv.Atoi(kv[0])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("%q is not a positive replica id", kv[0])
		}
		if _, dup := out[ids.ReplicaID(n)]; dup {
			return nil, fmt.Errorf("replica id %d listed twice", n)
		}
		out[ids.ReplicaID(n)] = kv[1]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty server list")
	}
	return out, nil
}
