// Command detmt-sim runs an interactive-scale simulation of one
// replicated object under a chosen deterministic scheduler and reports
// client latencies, network traffic, and replica agreement. It is the
// quickest way to poke at the system's behaviour from the command line.
//
// Usage:
//
//	detmt-sim -scheduler PMAT -clients 8 -requests 5 -mutexes 100
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"detmt/internal/harness"
	"detmt/internal/metrics"
	"detmt/internal/replica"
	"detmt/internal/trace"
	"detmt/internal/workload"
)

func main() {
	scheduler := flag.String("scheduler", "MAT", "SEQ, SAT, LSA, PDS, MAT, MAT+LLA, or PMAT")
	clients := flag.Int("clients", 8, "number of concurrent clients")
	requests := flag.Int("requests", 5, "requests per client")
	mutexes := flag.Int("mutexes", 100, "size of the object's mutex set")
	iterations := flag.Int("iterations", 10, "loop iterations per request")
	seed := flag.Uint64("seed", 1, "workload seed")
	netLat := flag.Duration("net-latency", 500*time.Microsecond, "one-way network latency")
	nested := flag.Duration("nested-latency", 12*time.Millisecond, "external service duration")
	pNested := flag.Float64("p-nested", 0.2, "per-iteration nested invocation probability")
	pCompute := flag.Float64("p-compute", 0.2, "per-iteration local computation probability")
	gantt := flag.Bool("gantt", false, "render replica 1's thread timeline (best with few clients)")
	traceOut := flag.String("trace", "", "write replica 1's scheduler trace as JSON to this file")
	flag.Parse()

	kind := replica.SchedulerKind(*scheduler)
	valid := false
	for _, k := range replica.AllKinds() {
		if k == kind {
			valid = true
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "detmt-sim: unknown scheduler %q (want one of %v)\n", *scheduler, replica.AllKinds())
		os.Exit(2)
	}

	o := harness.DefaultSim()
	o.Kind = kind
	o.Clients = *clients
	o.RequestsPerClient = *requests
	o.Seed = *seed
	o.NetLatency = *netLat
	o.NestedLatency = *nested
	o.Workload = workload.Fig1Config{
		Iterations:   *iterations,
		Mutexes:      *mutexes,
		PNested:      *pNested,
		PCompute:     *pCompute,
		ComputeDur:   1500 * time.Microsecond,
		Announceable: true,
	}
	if kind == replica.KindPDS {
		o.DummyInterval = 2 * time.Millisecond
		o.PDSWindow = 4
	}

	start := time.Now()
	r := harness.RunSim(o)
	wall := time.Since(start)

	fmt.Printf("scheduler %s, %d replicas, %d clients x %d requests, seed %d\n\n",
		kind, 3, *clients, *requests, *seed)
	tb := metrics.NewTable("metric", "value")
	tb.Row("requests completed", r.Requests)
	tb.Row("mean latency [ms]", metrics.Ms(r.Latency.Mean()))
	tb.Row("p50 latency [ms]", metrics.Ms(r.Latency.Percentile(50)))
	tb.Row("p95 latency [ms]", metrics.Ms(r.Latency.Percentile(95)))
	tb.Row("max latency [ms]", metrics.Ms(r.Latency.Max()))
	tb.Row("virtual makespan [ms]", metrics.Ms(r.Makespan))
	tb.Row("throughput [req/s]", fmt.Sprintf("%.1f", float64(r.Requests)/r.Makespan.Seconds()))
	tb.Row("wire transfers", r.Transfers)
	tb.Row("total-order broadcasts", r.Broadcasts)
	tb.Row("direct messages", r.Directs)
	tb.Row("object state counter", r.StateTotal)
	tb.Row("real time to simulate", wall.Round(time.Millisecond).String())
	fmt.Println(tb.String())

	if *gantt {
		fmt.Println("replica 1 timeline ('=' running, '?' lock-blocked, 'w' waiting, 'n' nested, letters = held mutex):")
		fmt.Println(trace.Gantt{Width: 100}.Render(r.Trace))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detmt-sim: %v\n", err)
			os.Exit(1)
		}
		if err := r.Trace.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-sim: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "detmt-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, r.Trace.Len())
	}

	agree := true
	for _, h := range r.Hashes[1:] {
		if h != r.Hashes[0] {
			agree = false
		}
	}
	if agree {
		fmt.Printf("replica schedules agree (hash %016x)\n", r.Hashes[0])
	} else {
		fmt.Printf("WARNING: replica schedules diverged: %x\n", r.Hashes)
		os.Exit(1)
	}
}
