package detmt_test

import (
	"fmt"
	"log"

	"detmt"
)

// ExampleNewCluster shows the complete life of a replicated counter:
// analyse, replicate, invoke, and check convergence — all in virtual
// time.
func ExampleNewCluster() {
	cluster, err := detmt.NewCluster(detmt.Options{
		Source: `
object Counter {
    monitor lock;
    field count;

    method add(n) {
        sync (lock) {
            count = count + n;
        }
    }
}`,
		Scheduler: detmt.PMAT,
		Replicas:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Run(func(s *detmt.Session) {
		client := s.NewClient(1)
		for i := 0; i < 3; i++ {
			if _, _, err := client.Invoke("add", int64(2)); err != nil {
				log.Fatal(err)
			}
		}
	})
	fmt.Println("count:", cluster.State(1)["count"])
	fmt.Println("converged:", cluster.Converged())
	// Output:
	// count: 6
	// converged: true
}

// ExampleAnalyze runs the paper's Fig. 4 static analysis on an object and
// prints the classification of its synchronized blocks.
func ExampleAnalyze() {
	report, err := detmt.Analyze(`
object Paper {
    field myo;

    method foo(o) {
        if (o == myo) {
            sync (o) { compute(1ms); }
        } else {
            sync (myo) { compute(1ms); }
        }
    }
}`)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range report.Syncs {
		kind := "spontaneous"
		if s.Announceable {
			kind = "announced at " + s.AnnouncedAt
		}
		fmt.Printf("sync%d on %q: %s\n", s.SyncID, s.Param, kind)
	}
	// Output:
	// sync1 on "o": announced at method entry
	// sync2 on "myo": spontaneous
}
