package detmt

import (
	"strings"
	"testing"
	"time"

	"detmt/internal/vclock"
)

func vclockReal() vclock.Clock { return vclock.NewReal() }

const counterSource = `
object Counter {
    monitor lock;
    field count;

    method add(n) {
        sync (lock) {
            count = count + n;
        }
    }

    method get() {
        var v = 0;
        sync (lock) {
            v = count;
        }
        return v;
    }
}
`

func TestClusterQuickstart(t *testing.T) {
	for _, sched := range Schedulers() {
		sched := sched
		t.Run(string(sched), func(t *testing.T) {
			opts := Options{Source: counterSource, Scheduler: sched}
			if sched == PDS {
				opts.PDSRelaxed = true
			}
			cluster, err := NewCluster(opts)
			if err != nil {
				t.Fatal(err)
			}
			var got Value
			cluster.Run(func(s *Session) {
				c := s.NewClient(1)
				for i := 0; i < 3; i++ {
					if _, _, err := c.Invoke("add", int64(i+1)); err != nil {
						t.Errorf("add: %v", err)
					}
				}
				v, lat, err := c.Invoke("get")
				if err != nil {
					t.Errorf("get: %v", err)
				}
				if lat <= 0 {
					t.Errorf("latency %v", lat)
				}
				got = v
			})
			if got != int64(6) {
				t.Fatalf("count %v, want 6", got)
			}
			if !cluster.Converged() {
				t.Fatal("replicas diverged")
			}
		})
	}
}

func TestClusterParallelClients(t *testing.T) {
	cluster, err := NewCluster(Options{Source: counterSource, Scheduler: PMAT})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run(func(s *Session) {
		j := s.Join()
		for ci := 1; ci <= 5; ci++ {
			c := s.NewClient(ci)
			j.Go(func() {
				for k := 0; k < 4; k++ {
					if _, _, err := c.Invoke("add", int64(1)); err != nil {
						t.Errorf("add: %v", err)
					}
				}
			})
		}
		j.Wait()
	})
	if got := cluster.State(1)["count"]; got != int64(20) {
		t.Fatalf("count %v, want 20", got)
	}
	if cluster.ScheduleHash(1) != cluster.ScheduleHash(2) || cluster.ScheduleHash(2) != cluster.ScheduleHash(3) {
		t.Fatal("schedule hashes differ across replicas")
	}
	transfers, broadcasts, _ := cluster.Traffic()
	if transfers == 0 || broadcasts != 20 {
		t.Fatalf("traffic transfers=%d broadcasts=%d", transfers, broadcasts)
	}
}

func TestClusterCrashTolerance(t *testing.T) {
	cluster, err := NewCluster(Options{Source: counterSource, Scheduler: MAT})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run(func(s *Session) {
		c := s.NewClient(1)
		if _, _, err := c.Invoke("add", int64(1)); err != nil {
			t.Errorf("add: %v", err)
		}
		cluster.Crash(3)
		if _, _, err := c.Invoke("add", int64(2)); err != nil {
			t.Errorf("post-crash add: %v", err)
		}
	})
	if got := cluster.State(1)["count"]; got != int64(3) {
		t.Fatalf("count %v", got)
	}
}

func TestClusterRunsInVirtualTime(t *testing.T) {
	cluster, err := NewCluster(Options{Source: counterSource})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Now()
	cluster.Run(func(s *Session) {
		s.Sleep(time.Hour) // an hour of virtual time
		if s.Now() < time.Hour {
			t.Error("virtual clock did not advance")
		}
	})
	if elapsed := time.Since(wall); elapsed > 5*time.Second {
		t.Fatalf("virtual hour took %v of real time", elapsed)
	}
}

func TestClusterOnRealClock(t *testing.T) {
	// The same stack drives wall-clock time: a smoke test that nothing
	// depends on virtual-clock internals. Durations are kept tiny.
	cluster, err := NewCluster(Options{
		Source:        counterSource,
		Scheduler:     MAT,
		Clock:         vclockReal(),
		NetLatency:    100 * time.Microsecond,
		NestedLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	cluster.Run(func(s *Session) {
		c := s.NewClient(1)
		for i := 0; i < 3; i++ {
			if _, _, err := c.Invoke("add", int64(2)); err != nil {
				t.Errorf("add: %v", err)
			}
		}
	})
	if got := cluster.State(1)["count"]; got != int64(6) {
		t.Fatalf("count %v", got)
	}
	if !cluster.Converged() {
		t.Fatal("replicas diverged on the real clock")
	}
	// Run includes a 2s drain sleep on the real clock; sanity-bound it.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("real-clock run took %v", elapsed)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{}); err == nil {
		t.Fatal("missing source not rejected")
	}
	if _, err := NewCluster(Options{Source: "object X {"}); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if _, err := NewCluster(Options{Source: `object X { method a() { b(); } method b() { a(); } }`}); err == nil {
		t.Fatal("analysis error not surfaced")
	}
}

func TestAnalyzeFacade(t *testing.T) {
	rep, err := Analyze(counterSource)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Transformed, "scheduler.lock(#1, lock);") {
		t.Fatalf("transformed source:\n%s", rep.Transformed)
	}
	if len(rep.Syncs) != 2 {
		t.Fatalf("syncs %+v", rep.Syncs)
	}
	for _, s := range rep.Syncs {
		if !s.Announceable || s.AnnouncedAt != "method entry" {
			t.Fatalf("sync %+v, want announceable monitor field", s)
		}
	}
	if _, err := Analyze("not a program"); err == nil {
		t.Fatal("bad source not rejected")
	}
}

func TestTraceExports(t *testing.T) {
	cluster, err := NewCluster(Options{Source: counterSource, Scheduler: MAT})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run(func(s *Session) {
		c := s.NewClient(1)
		if _, _, err := c.Invoke("add", int64(1)); err != nil {
			t.Errorf("add: %v", err)
		}
	})
	var js, html strings.Builder
	if err := cluster.WriteTrace(&js, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"lockacq"`) {
		t.Fatal("trace JSON missing grants")
	}
	if err := cluster.WriteTimeline(&html, 2, "demo"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "<svg") {
		t.Fatal("timeline missing SVG")
	}
}

func TestSessionGoAndNow(t *testing.T) {
	cluster, err := NewCluster(Options{Source: counterSource})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Run(func(s *Session) {
		ran := make(chan struct{})
		s.Go(func() {
			s.Sleep(time.Millisecond)
			close(ran)
		})
		s.Sleep(2 * time.Millisecond)
		select {
		case <-ran:
		default:
			t.Error("Session.Go goroutine did not run")
		}
		if s.Now() < 2*time.Millisecond {
			t.Errorf("session time %v", s.Now())
		}
	})
	if cluster.Now() < 2*time.Millisecond {
		t.Errorf("cluster time %v", cluster.Now())
	}
}
