package detmt

import (
	"detmt/internal/ids"
	"detmt/internal/server"
)

// This file re-exports the distributed deployment mode: real replica
// server processes connected over TCP (internal/server on top of the
// internal/wire transport), as opposed to the in-process simulated
// clusters that NewCluster builds. cmd/detmt-server and cmd/detmt-load
// are thin wrappers over the same types.

// ServerOptions configures one replica server process (see
// internal/server.Options for field documentation).
type ServerOptions = server.Options

// Server hosts one replica over TCP inside a paced virtual clock.
type Server = server.Server

// NewServer builds and starts a replica server: it listens for peer and
// client connections, dials its static membership, and (on the lowest
// member id) runs the stamped sequencing loop that keeps every member's
// virtual schedule identical.
func NewServer(o ServerOptions) (*Server, error) { return server.New(o) }

// LoadOptions configures a closed-loop load run against a server
// cluster.
type LoadOptions = server.LoadOptions

// LoadResult is the outcome of one load run, including the per-replica
// schedule consistency hashes and whether they converged.
type LoadResult = server.LoadResult

// ServerStatus is the control-protocol snapshot a server reports.
type ServerStatus = server.Status

// RunLoad drives the Fig. 1 measurement protocol over real sockets:
// closed-loop clients, first-reply-wins latency, and a final
// convergence check across all replicas.
func RunLoad(o LoadOptions) (*LoadResult, error) { return server.RunLoad(o) }

// ReplicaID is a group member identity (used in ServerOptions.Peers and
// LoadOptions.Servers maps).
type ReplicaID = ids.ReplicaID
