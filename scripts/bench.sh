#!/bin/sh
# Hot-path benchmark driver.
#
#   scripts/bench.sh [out.json]        run the hotpath experiment, write JSON
#   scripts/bench.sh -earlysched [out] run the earlysched experiment instead
#   scripts/bench.sh -micro            also run the Benchmark* microbenchmarks
#   scripts/bench.sh -compare A B      diff the Metrics of two JSON outputs
#
# The JSON output is `detmt-bench -experiment hotpath -json` (an array of
# harness results whose Metrics map carries the numbers); BENCH_PR*.json
# files in the repo root are committed snapshots of it. The -compare mode
# is a benchstat-style before/after table over those Metrics.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-compare" ]; then
    [ $# -eq 3 ] || { echo "usage: scripts/bench.sh -compare before.json after.json" >&2; exit 2; }
    exec go run ./cmd/detmt-benchdiff "$2" "$3"
fi

if [ "${1:-}" = "-earlysched" ]; then
    out="${2:-BENCH_EARLYSCHED.json}"
    go run ./cmd/detmt-bench -experiment earlysched -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-micro" ]; then
    exec go test -run xxx -bench 'BenchmarkHotPath' -benchmem \
        ./internal/trace/ ./internal/core/ ./internal/wire/
fi

out="${1:-BENCH.json}"
go run ./cmd/detmt-bench -experiment hotpath -json > "$out"
echo "wrote $out" >&2
