#!/bin/sh
# Hot-path benchmark driver.
#
#   scripts/bench.sh [out.json]        run the hotpath experiment, write JSON
#   scripts/bench.sh -earlysched [out] run the earlysched experiment instead
#   scripts/bench.sh -openloop [out]   open-loop throughput matrix (E15, real sockets)
#   scripts/bench.sh -ceiling [out]    sequencer ceiling search only (real sockets)
#   scripts/bench.sh -gate [baseline]  rerun the ceiling and fail on a >10% drop
#                                      vs the committed baseline (default BENCH_PR7.json)
#   scripts/bench.sh -micro            also run the Benchmark* microbenchmarks
#   scripts/bench.sh -compare A B      diff the Metrics of two JSON outputs
#
# The JSON output is `detmt-bench -experiment hotpath -json` (an array of
# harness results whose Metrics map carries the numbers); BENCH_PR*.json
# files in the repo root are committed snapshots of it. The -compare mode
# is a benchstat-style before/after table over those Metrics.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-compare" ]; then
    [ $# -eq 3 ] || { echo "usage: scripts/bench.sh -compare before.json after.json" >&2; exit 2; }
    exec go run ./cmd/detmt-benchdiff "$2" "$3"
fi

if [ "${1:-}" = "-earlysched" ]; then
    out="${2:-BENCH_EARLYSCHED.json}"
    go run ./cmd/detmt-bench -experiment earlysched -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-openloop" ]; then
    out="${2:-BENCH_PR7.json}"
    go run ./cmd/detmt-bench -experiment openloop,ceiling -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-ceiling" ]; then
    out="${2:-BENCH_CEILING.json}"
    go run ./cmd/detmt-bench -experiment ceiling -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-gate" ]; then
    baseline="${2:-BENCH_PR7.json}"
    [ -f "$baseline" ] || { echo "bench.sh: baseline $baseline not found" >&2; exit 1; }
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    go run ./cmd/detmt-bench -experiment ceiling -json > "$tmp"
    exec go run ./cmd/detmt-benchdiff -gate ceiling/ceiling_rps -max-drop 10 "$baseline" "$tmp"
fi

if [ "${1:-}" = "-micro" ]; then
    exec go test -run xxx -bench 'BenchmarkHotPath' -benchmem \
        ./internal/trace/ ./internal/core/ ./internal/wire/
fi

out="${1:-BENCH.json}"
go run ./cmd/detmt-bench -experiment hotpath -json > "$out"
echo "wrote $out" >&2
