#!/bin/sh
# Hot-path benchmark driver.
#
#   scripts/bench.sh [out.json]        run the hotpath experiment, write JSON
#   scripts/bench.sh -earlysched [out] run the earlysched experiment instead
#   scripts/bench.sh -openloop [out]   open-loop throughput matrix (E15, real sockets)
#   scripts/bench.sh -ceiling [out]    sequencer ceiling search only (real sockets)
#   scripts/bench.sh -shards [out]     sharded aggregate-ceiling ladder (E16,
#                                      1/2/4-shard multi-tenant processes)
#   scripts/bench.sh -http [out]       HTTP facade overhead (E17: gateway vs
#                                      direct ceiling over the KV object)
#   scripts/bench.sh -gate [baseline]  rerun the single-group ceiling, the
#                                      sharded aggregate ceiling and the facade
#                                      ceilings; fail on a >10% drop vs the
#                                      committed baseline (default
#                                      BENCH_PR9.json; metrics the baseline
#                                      does not carry are not gated)
#   scripts/bench.sh -micro            also run the Benchmark* microbenchmarks
#   scripts/bench.sh -compare A B      diff the Metrics of two JSON outputs
#
# The JSON output is `detmt-bench -experiment hotpath -json` (an array of
# harness results whose Metrics map carries the numbers); BENCH_PR*.json
# files in the repo root are committed snapshots of it. The -compare mode
# is a benchstat-style before/after table over those Metrics.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "-compare" ]; then
    [ $# -eq 3 ] || { echo "usage: scripts/bench.sh -compare before.json after.json" >&2; exit 2; }
    exec go run ./cmd/detmt-benchdiff "$2" "$3"
fi

if [ "${1:-}" = "-earlysched" ]; then
    out="${2:-BENCH_EARLYSCHED.json}"
    go run ./cmd/detmt-bench -experiment earlysched -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-openloop" ]; then
    # The committed BENCH_PR9.json snapshot is this plus the sharded
    # ladder and the HTTP facade comparison:
    # detmt-bench -experiment openloop,ceiling,sharded,kvfacade.
    out="${2:-BENCH_OPENLOOP.json}"
    go run ./cmd/detmt-bench -experiment openloop,ceiling -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-ceiling" ]; then
    out="${2:-BENCH_CEILING.json}"
    go run ./cmd/detmt-bench -experiment ceiling -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-shards" ]; then
    out="${2:-BENCH_SHARDED.json}"
    go run ./cmd/detmt-bench -experiment sharded -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-http" ]; then
    out="${2:-BENCH_KVFACADE.json}"
    go run ./cmd/detmt-bench -experiment kvfacade -json > "$out"
    echo "wrote $out" >&2
    exit 0
fi

if [ "${1:-}" = "-gate" ]; then
    baseline="${2:-BENCH_PR9.json}"
    [ -f "$baseline" ] || { echo "bench.sh: baseline $baseline not found" >&2; exit 1; }
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    # Only gate metrics the baseline actually carries: older snapshots
    # predate the sharded and facade experiments, and a gate on a
    # missing key fails by design.
    keys="ceiling/ceiling_rps"
    experiments="ceiling"
    if grep -q aggregate_ceiling_rps "$baseline"; then
        keys="$keys,sharded_ceiling/aggregate_ceiling_rps"
        experiments="$experiments,sharded"
    fi
    if grep -q gateway_ceiling_rps "$baseline"; then
        keys="$keys,kv_facade/direct_ceiling_rps,kv_facade/gateway_ceiling_rps"
        experiments="$experiments,kvfacade"
    fi
    go run ./cmd/detmt-bench -experiment "$experiments" -json > "$tmp"
    exec go run ./cmd/detmt-benchdiff -gate "$keys" -max-drop 10 "$baseline" "$tmp"
fi

if [ "${1:-}" = "-micro" ]; then
    exec go test -run xxx -bench 'BenchmarkHotPath' -benchmem \
        ./internal/trace/ ./internal/core/ ./internal/wire/
fi

out="${1:-BENCH.json}"
go run ./cmd/detmt-bench -experiment hotpath -json > "$out"
echo "wrote $out" >&2
