#!/bin/sh
# The full verification gate, for environments without make:
# build + vet + race-enabled tests (same as `make check`).
#
#   scripts/check.sh          full gate (includes real-socket cluster tests
#                             and the sharded-binary smoke)
#   scripts/check.sh -short   what CI runs: skips the loopback-TCP tests
#                             and the sharded-binary smoke
#   scripts/check.sh -bench   full gate + the throughput regression gates
#                             (reruns the single-group ceiling search, the
#                             sharded aggregate ceiling and the HTTP facade
#                             ceilings and fails on a >10% drop vs the
#                             committed BENCH_PR9.json; wall timing-sensitive,
#                             so not part of the default run)
#   scripts/check.sh -soak    the long mixed-chaos soak only: seeded
#                             transport partitions + a replica kill/rejoin +
#                             a backend error-rate episode + one live
#                             membership change, all under continuous load;
#                             fails on any lost client reply or hash
#                             divergence. DETMT_SOAK_SECS tunes the dwell
#                             time (default 20s; CI's nightly job uses 300).
set -eu
cd "$(dirname "$0")/.."
short=""
bench=""
if [ "${1:-}" = "-short" ]; then
	short="-short"
fi
if [ "${1:-}" = "-bench" ]; then
	bench="yes"
fi
if [ "${1:-}" = "-soak" ]; then
	echo "check.sh: mixed-chaos soak (DETMT_SOAK_SECS=${DETMT_SOAK_SECS:-20})" >&2
	DETMT_SOAK=1 exec go test -race -count=1 -run 'TestMixedChaosSoak' -timeout 30m -v ./internal/server/
fi
go build ./...
go vet ./...
# staticcheck is optional locally (it is not vendored and the gate must
# not install anything); CI installs and runs it unconditionally.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "check.sh: staticcheck not installed, skipping (CI runs it)" >&2
fi
# -shuffle=on randomises test order to flush hidden inter-test state
# (go prints the seed on failure for reproduction with -shuffle=SEED).
# The full (non-short) gate includes the class-parallel chaos soaks:
# harness TestEarlySchedChaosSoak and the real-socket
# TestClusterEarlySchedChaos in internal/server.
go test -race -shuffle=on $short ./...
if [ -z "$short" ]; then
	# Sharded binary smoke: the Go tests exercise the library; this drives
	# the shipped binaries end to end the way the README walkthrough does —
	# one 2-shard multi-tenant server with cross-shard nested calls, one
	# ring-routed load generator, fail on divergence or request errors.
	echo "check.sh: sharded binary smoke (detmt-server -shards 2 -xshard + detmt-load -shards)" >&2
	tmpdir="$(mktemp -d)"
	go build -o "$tmpdir/detmt-server" ./cmd/detmt-server
	go build -o "$tmpdir/detmt-load" ./cmd/detmt-load
	"$tmpdir/detmt-server" -id 1 -listen 127.0.0.1:7461 -shards 2 -xshard \
		-data "$tmpdir/epochs" >"$tmpdir/server.log" 2>&1 &
	srv=$!
	trap 'kill "$srv" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
	sleep 1
	if ! "$tmpdir/detmt-load" -shards -servers 1=127.0.0.1:7461 -clients 2 -requests 5; then
		echo "check.sh: sharded smoke FAILED; server log:" >&2
		cat "$tmpdir/server.log" >&2
		exit 1
	fi
	kill "$srv" 2>/dev/null || true
	wait "$srv" 2>/dev/null || true
	rm -rf "$tmpdir"
	trap - EXIT
	# Gateway smoke: boot a 2-shard KV cluster, front it with
	# detmt-gateway, and drive one tokenized PUT/GET round-trip plus the
	# health endpoint over plain HTTP — the README walkthrough, scripted.
	echo "check.sh: gateway smoke (detmt-server -shards 2 -kv + detmt-gateway)" >&2
	tmpdir="$(mktemp -d)"
	go build -o "$tmpdir/detmt-server" ./cmd/detmt-server
	go build -o "$tmpdir/detmt-gateway" ./cmd/detmt-gateway
	"$tmpdir/detmt-server" -id 1 -listen 127.0.0.1:7471 -shards 2 -kv \
		-data "$tmpdir/epochs" >"$tmpdir/server.log" 2>&1 &
	srv=$!
	"$tmpdir/detmt-gateway" -listen 127.0.0.1:7479 -servers 127.0.0.1:7471 \
		>"$tmpdir/gateway.log" 2>&1 &
	gwp=$!
	trap 'kill "$srv" "$gwp" 2>/dev/null || true; rm -rf "$tmpdir"' EXIT
	ok=""
	for i in $(seq 1 40); do
		if curl -fsS http://127.0.0.1:7479/healthz >/dev/null 2>&1; then
			ok=yes
			break
		fi
		sleep 0.25
	done
	put="$(curl -fsS -X PUT -d '{"value":41}' 'http://127.0.0.1:7479/kv/7?token=smoke' 2>/dev/null || true)"
	got="$(curl -fsS http://127.0.0.1:7479/kv/7 2>/dev/null || true)"
	if [ -z "$ok" ] || [ "${got#*\"value\":41}" = "$got" ]; then
		echo "check.sh: gateway smoke FAILED (healthz=$ok put=$put get=$got); logs:" >&2
		cat "$tmpdir/server.log" "$tmpdir/gateway.log" >&2
		exit 1
	fi
	echo "check.sh: gateway smoke OK ($got)" >&2
	kill "$srv" "$gwp" 2>/dev/null || true
	wait "$srv" "$gwp" 2>/dev/null || true
	rm -rf "$tmpdir"
	trap - EXIT
fi
if [ -n "$bench" ]; then
	scripts/bench.sh -gate BENCH_PR9.json
fi
