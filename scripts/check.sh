#!/bin/sh
# The full verification gate, for environments without make:
# build + vet + race-enabled tests (same as `make check`).
#
#   scripts/check.sh          full gate (includes real-socket cluster tests)
#   scripts/check.sh -short   what CI runs: skips the loopback-TCP tests
set -eu
cd "$(dirname "$0")/.."
short=""
if [ "${1:-}" = "-short" ]; then
	short="-short"
fi
go build ./...
go vet ./...
go test -race $short ./...
