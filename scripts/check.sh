#!/bin/sh
# The full verification gate, for environments without make:
# build + vet + race-enabled tests (same as `make check`).
#
#   scripts/check.sh          full gate (includes real-socket cluster tests)
#   scripts/check.sh -short   what CI runs: skips the loopback-TCP tests
set -eu
cd "$(dirname "$0")/.."
short=""
if [ "${1:-}" = "-short" ]; then
	short="-short"
fi
go build ./...
go vet ./...
# staticcheck is optional locally (it is not vendored and the gate must
# not install anything); CI installs and runs it unconditionally.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "check.sh: staticcheck not installed, skipping (CI runs it)" >&2
fi
# -shuffle=on randomises test order to flush hidden inter-test state
# (go prints the seed on failure for reproduction with -shuffle=SEED).
# The full (non-short) gate includes the class-parallel chaos soaks:
# harness TestEarlySchedChaosSoak and the real-socket
# TestClusterEarlySchedChaos in internal/server.
go test -race -shuffle=on $short ./...
