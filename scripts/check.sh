#!/bin/sh
# The full verification gate, for environments without make:
# build + vet + race-enabled tests (same as `make check`).
#
#   scripts/check.sh          full gate (includes real-socket cluster tests)
#   scripts/check.sh -short   what CI runs: skips the loopback-TCP tests
#   scripts/check.sh -bench   full gate + the sequencer-throughput regression
#                             gate (reruns the ceiling search and fails on a
#                             >10% drop vs the committed BENCH_PR7.json; wall
#                             timing-sensitive, so not part of the default run)
set -eu
cd "$(dirname "$0")/.."
short=""
bench=""
if [ "${1:-}" = "-short" ]; then
	short="-short"
fi
if [ "${1:-}" = "-bench" ]; then
	bench="yes"
fi
go build ./...
go vet ./...
# staticcheck is optional locally (it is not vendored and the gate must
# not install anything); CI installs and runs it unconditionally.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "check.sh: staticcheck not installed, skipping (CI runs it)" >&2
fi
# -shuffle=on randomises test order to flush hidden inter-test state
# (go prints the seed on failure for reproduction with -shuffle=SEED).
# The full (non-short) gate includes the class-parallel chaos soaks:
# harness TestEarlySchedChaosSoak and the real-socket
# TestClusterEarlySchedChaos in internal/server.
go test -race -shuffle=on $short ./...
if [ -n "$bench" ]; then
	scripts/bench.sh -gate BENCH_PR7.json
fi
