module detmt

go 1.22
