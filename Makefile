GO ?= go

.PHONY: check build vet test test-short bench bins clean

# The full verification gate: everything CI (and reviewers) should run.
# -shuffle=on randomises test order to flush hidden inter-test state.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -shuffle=on ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Skips the real-socket cluster tests (loopback TCP servers).
test-short:
	$(GO) test -race -short ./...

bench:
	$(GO) run ./cmd/detmt-bench -experiment all

# Build the command-line tools into ./bin.
bins:
	mkdir -p bin
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
