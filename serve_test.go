package detmt_test

import (
	"net"
	"testing"
	"time"

	"detmt"
	"detmt/internal/workload"
)

// TestServeFacade boots a 2-replica TCP cluster through the public
// facade and drives one request through it.
func TestServeFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket cluster test")
	}
	wl := workload.Fig1Config{
		Iterations: 3, Mutexes: 8, PNested: 0.2, PCompute: 0.2,
		ComputeDur: 200 * time.Microsecond, Announceable: true,
	}
	lns := make([]net.Listener, 2)
	addrs := map[detmt.ReplicaID]string{}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[detmt.ReplicaID(i+1)] = ln.Addr().String()
	}
	for i := range lns {
		id := detmt.ReplicaID(i + 1)
		peers := map[detmt.ReplicaID]string{}
		for pid, a := range addrs {
			if pid != id {
				peers[pid] = a
			}
		}
		srv, err := detmt.NewServer(detmt.ServerOptions{
			ID: id, Listener: lns[i], Peers: peers,
			Scheduler: detmt.MAT, Workload: wl,
			NestedLatency: time.Millisecond,
			Tick:          2 * time.Millisecond,
			Budget:        5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
	}
	res, err := detmt.RunLoad(detmt.LoadOptions{
		Servers: addrs, Clients: 1, RequestsPerClient: 2,
		Seed: 5, Workload: wl, Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Errors > 0 {
		t.Fatalf("facade run: converged=%v errors=%d statuses=%+v",
			res.Converged, res.Errors, res.Statuses)
	}
}
